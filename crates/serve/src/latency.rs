//! HDR-style log-bucketed latency histograms for the serving path.
//!
//! Production serving lives on tail latency, not means: one slow batch
//! behind a hot queue is invisible in an average and glaring at p99.
//! [`LatencyHistogram`] records durations into log-linear buckets —
//! exact below 16 ns, then 16 sub-buckets per power of two (≤ ~6%
//! relative error) up to the full `u64` nanosecond range — in a fixed
//! 976-counter table, so recording is a single increment and the memory
//! cost is constant no matter how many samples land.
//!
//! Two properties matter to the engine:
//!
//! - **Deterministic merge**: [`LatencyHistogram::merge`] adds
//!   bucket-wise, so folding per-shard histograms into the aggregate is
//!   commutative and associative — the quantiles of the merged
//!   histogram depend only on the multiset of recorded buckets, never
//!   on merge order or shard count.
//! - **Deterministic quantiles**: [`LatencyHistogram::quantile`]
//!   returns the *lower bound* of the bucket holding the requested
//!   rank, a pure function of the counts (no interpolation state).
//!
//! Shard workers record into a plain [`LatencyHistogram`] (each worker
//! is single-threaded); the submit-path fast cache records into the
//! crate-private `AtomicLatency` — the same bucket layout with relaxed
//! atomic counters — so the lock-free fast path never takes a lock for
//! its own telemetry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per power of two.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUBS: u64 = 1 << SUB_BITS;
/// Total buckets: values `0..16` map exactly (octave 0); above that,
/// one octave of 16 sub-buckets per leading-bit position from bit 4
/// through bit 63 — 61 octaves of 16 = 976 counters.
const BUCKETS: usize = ((64 - SUB_BITS + 1) as usize) * (SUBS as usize);

/// Bucket index for a nanosecond value (log-linear, monotone in `ns`).
fn bucket_index(ns: u64) -> usize {
    if ns < SUBS {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as u64;
    let sub = (ns >> (msb - SUB_BITS)) & (SUBS - 1);
    (octave * SUBS + sub) as usize
}

/// Smallest nanosecond value mapping to bucket `index` — the value
/// quantiles report for that bucket.
fn bucket_floor(index: usize) -> u64 {
    let octave = index as u64 / SUBS;
    let sub = index as u64 % SUBS;
    if octave == 0 {
        return sub;
    }
    (SUBS + sub) << (octave - 1)
}

/// A log-bucketed latency histogram with deterministic bucket-wise
/// merge and quantile extraction (see the module docs for the layout).
///
/// # Examples
///
/// ```
/// use serve::LatencyHistogram;
/// use std::time::Duration;
///
/// let mut h = LatencyHistogram::default();
/// assert!(h.is_empty());
/// for us in [90u64, 100, 110, 5000] {
///     h.record(Duration::from_micros(us));
/// }
/// assert_eq!(h.count(), 4);
/// let p50 = h.p50().unwrap();
/// assert!(p50 >= Duration::from_micros(90) && p50 < Duration::from_micros(120));
/// assert!(h.p99().unwrap() >= Duration::from_micros(4000));
///
/// // Merging is bucket-wise: order never changes the quantiles.
/// let mut other = LatencyHistogram::default();
/// other.record(Duration::from_micros(100));
/// h.merge(&other);
/// assert_eq!(h.count(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one latency sample given directly in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.total += 1;
    }

    /// Number of samples recorded (including merged-in ones).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Folds `other` into `self` bucket-wise. Commutative and
    /// associative, so per-shard histograms merge into the engine
    /// aggregate deterministically in any order.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// The latency at quantile `q ∈ [0, 1]` — the lower bound of the
    /// bucket holding the `ceil(q·count)`-th smallest sample (so `q =
    /// 0` reports the minimum's bucket and `q = 1` the maximum's).
    /// `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(Duration::from_nanos(bucket_floor(index)));
            }
        }
        None
    }

    /// Median latency (`None` when empty).
    pub fn p50(&self) -> Option<Duration> {
        self.quantile(0.50)
    }

    /// 99th-percentile latency (`None` when empty).
    pub fn p99(&self) -> Option<Duration> {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency (`None` when empty).
    pub fn p999(&self) -> Option<Duration> {
        self.quantile(0.999)
    }
}

/// The same bucket layout with relaxed atomic counters, for recording
/// from any number of client threads without a lock (the submit-path
/// fast cache's telemetry). Snapshot into a [`LatencyHistogram`] to
/// read quantiles.
#[derive(Debug)]
pub(crate) struct AtomicLatency {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
}

impl Default for AtomicLatency {
    fn default() -> Self {
        Self {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
        }
    }
}

impl AtomicLatency {
    /// Records one latency sample (relaxed increments: counters are
    /// statistics, not synchronization).
    pub(crate) fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.counts[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-histogram snapshot of the counters.
    pub(crate) fn snapshot(&self) -> LatencyHistogram {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total = counts.iter().sum();
        LatencyHistogram { counts, total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut values: Vec<u64> = Vec::new();
        for shift in 0..64u32 {
            for delta in [0u64, 1, 3] {
                values.push((1u64 << shift).saturating_add(delta << shift.saturating_sub(3)));
            }
        }
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let index = bucket_index(v);
            assert!(index < BUCKETS, "index {index} out of range for {v}");
            assert!(index >= last, "bucket index must be monotone in value");
            last = index;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_floor_inverts_within_relative_error() {
        for v in [0u64, 1, 15, 16, 17, 100, 999, 1_000_000, u64::MAX / 3] {
            let floor = bucket_floor(bucket_index(v));
            assert!(floor <= v, "floor {floor} above value {v}");
            // Log-linear with 16 sub-buckets: floor is within 1/16 of v.
            assert!(
                v - floor <= v / 16,
                "floor {floor} more than 1/16 below {v}"
            );
            assert_eq!(bucket_index(floor), bucket_index(v));
        }
    }

    #[test]
    fn quantiles_are_exact_below_sixteen_nanoseconds() {
        let mut h = LatencyHistogram::default();
        for ns in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record_ns(ns);
        }
        assert_eq!(h.quantile(0.0), Some(Duration::from_nanos(1)));
        assert_eq!(h.p50(), Some(Duration::from_nanos(5)));
        assert_eq!(h.quantile(1.0), Some(Duration::from_nanos(10)));
    }

    #[test]
    fn tail_quantiles_find_the_outlier() {
        // 101 samples: rank ceil(0.99·101) = 100 stays in the bulk,
        // rank ceil(0.999·101) = 101 is the outlier.
        let mut h = LatencyHistogram::default();
        for _ in 0..100 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        let p50 = h.p50().unwrap();
        assert!(p50 >= Duration::from_micros(93) && p50 <= Duration::from_micros(100));
        assert!(h.p99().unwrap() < Duration::from_millis(1));
        assert!(h.p999().unwrap() >= Duration::from_millis(46));
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        for i in 0..200u64 {
            a.record_ns(i * 37 + 5);
            b.record_ns(i * 91 + 1_000);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 400);
        assert_eq!(ab.p50(), ba.p50());
        assert_eq!(ab.p999(), ba.p999());
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.p999(), None);
    }

    #[test]
    fn atomic_snapshot_matches_plain_recording() {
        let atomic = AtomicLatency::default();
        let mut plain = LatencyHistogram::default();
        for us in [1u64, 50, 50, 900, 12_000] {
            atomic.record(Duration::from_micros(us));
            plain.record(Duration::from_micros(us));
        }
        assert_eq!(atomic.snapshot(), plain);
    }
}
