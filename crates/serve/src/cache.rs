//! A fixed-capacity least-recently-used map.
//!
//! The serving engine fronts the enclave with one of these, keyed by
//! `(vault epoch, node id)`: a repeated query is answered from the
//! cache and never re-enters the enclave, and keying by epoch means a
//! redeployed vault can never serve a predecessor's answers. The type
//! is a plain generic container, so tests (and future layers — e.g. an
//! embedding cache) can reuse it for any key/value pair.

use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel index for "no entry" in the intrusive recency list.
const NIL: usize = usize::MAX;

/// One slot of the cache: the key/value pair plus its position in the
/// doubly-linked recency list (indices into the slot vector).
#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used cache with O(1) amortized `get`/`insert`.
///
/// Recency is maintained with an intrusive doubly-linked list over a
/// slot vector (no per-entry allocation); a `HashMap` indexes keys to
/// slots. A capacity of `0` disables the cache entirely: every `insert`
/// is a no-op and every `get` misses — handy for turning caching off in
/// a config without branching at the call sites.
///
/// # Examples
///
/// ```
/// use serve::LruCache;
///
/// let mut cache = LruCache::new(2);
/// cache.insert("a", 1);
/// cache.insert("b", 2);
/// assert_eq!(cache.get(&"a"), Some(&1)); // touches "a": "b" is now LRU
/// cache.insert("c", 3);                  // evicts "b"
/// assert_eq!(cache.get(&"b"), None);
/// assert_eq!(cache.get(&"c"), Some(&3));
/// assert_eq!(cache.len(), 2);
/// ```
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    /// Most-recently-used slot index, or [`NIL`] when empty.
    head: usize,
    /// Least-recently-used slot index, or [`NIL`] when empty.
    tail: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (0 disables).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &slot = self.map.get(key)?;
        self.detach(slot);
        self.push_front(slot);
        Some(&self.slots[slot].value)
    }

    /// Looks up `key` without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&slot| &self.slots[slot].value)
    }

    /// Whether `key` is cached (does not touch recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts (or refreshes) an entry, evicting the least-recently-used
    /// one when the cache is full. Returns the evicted pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].value = value;
            self.detach(slot);
            self.push_front(slot);
            return None;
        }
        if self.map.len() == self.capacity {
            // Full: recycle the LRU slot in place for the new entry.
            let lru = self.tail;
            self.detach(lru);
            let old = std::mem::replace(
                &mut self.slots[lru],
                Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                },
            );
            self.map.remove(&old.key);
            self.map.insert(key, lru);
            self.push_front(lru);
            return Some((old.key, old.value));
        }
        self.slots.push(Slot {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        });
        let slot = self.slots.len() - 1;
        self.map.insert(key, slot);
        self.push_front(slot);
        None
    }

    /// Drops every entry (capacity is kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Unlinks `slot` from the recency list.
    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev == NIL {
            if self.head == slot {
                self.head = next;
            }
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            if self.tail == slot {
                self.tail = prev;
            }
        } else {
            self.slots[next].prev = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    /// Links `slot` in as most-recently-used.
    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_recency_order() {
        let mut c = LruCache::new(3);
        for i in 0..3 {
            assert_eq!(c.insert(i, i * 10), None);
        }
        assert_eq!(c.get(&0), Some(&0)); // order now 0, 2, 1
        let evicted = c.insert(3, 30); // evicts 1
        assert_eq!(evicted, Some((1, 10)));
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&0), Some(&0));
        assert_eq!(c.get(&2), Some(&20));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert("x", 1);
        c.insert("y", 2);
        c.insert("x", 9); // refresh: "y" becomes LRU
        c.insert("z", 3); // evicts "y"
        assert_eq!(c.peek(&"x"), Some(&9));
        assert_eq!(c.peek(&"y"), None);
        assert_eq!(c.peek(&"z"), Some(&3));
    }

    #[test]
    fn peek_does_not_promote() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.peek(&1), Some(&"a")); // no promotion: 1 stays LRU
        c.insert(3, "c");
        assert!(!c.contains(&1));
        assert!(c.contains(&2));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        assert_eq!(c.insert(1, 1), None);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 0);
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut c = LruCache::new(4);
        c.insert(1, 1);
        c.insert(2, 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 4);
        c.insert(3, 3);
        assert_eq!(c.get(&3), Some(&3));
    }

    #[test]
    fn capacity_one_always_keeps_latest() {
        let mut c = LruCache::new(1);
        for i in 0..100 {
            c.insert(i, i);
            assert_eq!(c.len(), 1);
            assert_eq!(c.get(&i), Some(&i));
        }
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        // Exercise slot reuse: interleaved inserts/gets over a small
        // capacity, checking the map and list never disagree.
        let mut c = LruCache::new(8);
        for round in 0u64..500 {
            let key = (round * 7 + 3) % 32;
            c.insert(key, round);
            let probe = (round * 13 + 1) % 32;
            if let Some(&v) = c.get(&probe) {
                assert!(v <= round);
            }
            assert!(c.len() <= 8);
        }
    }
}
