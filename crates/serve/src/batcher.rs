//! Size- and deadline-bounded batch admission.
//!
//! Clients push node-query requests into an [`AdmissionQueue`] from any
//! thread; the serving worker pulls *batches* out. A batch flushes when
//! the pending node count reaches [`BatchPolicy::max_batch_nodes`]
//! (size bound) or when the oldest pending request has waited
//! [`BatchPolicy::max_delay`] (deadline bound — a lone request is never
//! stranded waiting for peers). Admission control degrades overload in
//! two stages: past [`BatchPolicy::shed_high_water`] pending requests
//! the queue *sheds* new arrivals with [`ServeError::Overloaded`] and a
//! retry-after hint, and at the hard cap
//! [`BatchPolicy::max_queue_requests`] it rejects outright — either way
//! latency stays bounded instead of growing without limit.

use crate::sentinel::ClientId;
use crate::ServeError;
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use tee::ClassLabel;

/// Batching and admission knobs for the serving engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush a batch once this many query nodes are pending. A single
    /// request larger than the bound is admitted and forms its own
    /// batch.
    pub max_batch_nodes: usize,
    /// Flush a partial batch once its oldest request has waited this
    /// long (the serving latency bound under light load).
    pub max_delay: Duration,
    /// Reject new requests once this many are already queued.
    pub max_queue_requests: usize,
    /// Load-shedding high-water mark: once this many requests are
    /// pending, new submissions fail fast with
    /// [`ServeError::Overloaded`] (carrying a retry-after hint) instead
    /// of queueing toward the hard cap. Set it at or above
    /// [`BatchPolicy::max_queue_requests`] to disable shedding (the cap
    /// check fires first).
    pub shed_high_water: usize,
}

impl Default for BatchPolicy {
    /// 64-node batches, a 2 ms flush deadline, a 4096-request queue,
    /// and shedding from 3072 pending requests (3/4 of the cap).
    fn default() -> Self {
        Self {
            max_batch_nodes: 64,
            max_delay: Duration::from_millis(2),
            max_queue_requests: 4096,
            shed_high_water: 3072,
        }
    }
}

/// Why [`AdmissionQueue::next_batch`] released a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The size bound was reached.
    Full,
    /// The oldest request's deadline expired with a partial batch.
    Deadline,
    /// The queue was closed and remaining requests are being drained.
    Drain,
}

/// Outcome of one [`AdmissionQueue::poll_batch`] call.
#[derive(Debug)]
pub enum BatchPoll {
    /// A batch became due within the poll window.
    Batch(Vec<PendingRequest>, FlushReason),
    /// The wait expired (or the queue was [`notify`](AdmissionQueue::notify)-ed)
    /// with no batch due; the worker should service its control channel
    /// and poll again.
    Idle,
    /// The queue is closed and fully drained: the worker's exit signal.
    Drained,
}

/// One admitted request, as handed to the serving worker.
///
/// The worker answers it with [`PendingRequest::respond`]; dropping it
/// unanswered (a worker death) resolves the client's [`Ticket`] to
/// [`ServeError::ShardFailed`] — a typed error, never a hang.
#[derive(Debug)]
pub struct PendingRequest {
    nodes: Vec<usize>,
    client: ClientId,
    enqueued_at: Instant,
    responder: Sender<Result<Vec<ClassLabel>, ServeError>>,
}

impl PendingRequest {
    /// The node ids this request asks about (in client order).
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// The session that submitted the request
    /// ([`ClientId::ANONYMOUS`] for unattributed traffic), so every
    /// sub-request a worker sees is attributable to its origin.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// When the request was admitted.
    pub fn enqueued_at(&self) -> Instant {
        self.enqueued_at
    }

    /// How long the request has been waiting since admission — the
    /// quantity the worker checks against
    /// [`ServeConfig::request_timeout`](crate::ServeConfig).
    pub fn waited(&self) -> Duration {
        self.enqueued_at.elapsed()
    }

    /// Resolves the client's ticket. A client that dropped its ticket
    /// is silently skipped.
    pub fn respond(self, result: Result<Vec<ClassLabel>, ServeError>) {
        let _ = self.responder.send(result);
    }
}

/// One partial answer channel of a [`Ticket`]: the labels a single
/// shard queue will deliver, plus where they land in the client's
/// request order (`None` = the part covers the whole request).
#[derive(Debug)]
struct TicketPart {
    receiver: Receiver<Result<Vec<ClassLabel>, ServeError>>,
    positions: Option<Vec<usize>>,
    /// The shard whose worker will answer this part; a disconnected
    /// responder resolves to [`ServeError::ShardFailed`] for it.
    shard: usize,
}

/// The client half of one submitted request: blocks until the serving
/// worker(s) answer.
///
/// A ticket from a single queue carries one part; a ticket from a
/// sharded router carries one part per shard the request's nodes hash
/// to, and [`Ticket::wait`] reassembles the labels back into the
/// client's request order.
#[derive(Debug)]
pub struct Ticket {
    parts: Vec<TicketPart>,
    total: usize,
    /// Already-resolved answer from the submit-path fast cache: the
    /// request never entered a queue and `wait` returns immediately.
    ready: Option<Vec<ClassLabel>>,
}

impl Ticket {
    /// Wraps a single answer channel covering the whole request,
    /// answered by `shard`'s worker.
    pub(crate) fn from_receiver(
        receiver: Receiver<Result<Vec<ClassLabel>, ServeError>>,
        shard: usize,
    ) -> Ticket {
        Ticket {
            parts: vec![TicketPart {
                receiver,
                positions: None,
                shard,
            }],
            total: 0,
            ready: None,
        }
    }

    /// A ticket resolved on the submit thread (every node hit the
    /// fast cache): carries its labels, owns no channel, and never
    /// blocks.
    pub(crate) fn ready(labels: Vec<ClassLabel>) -> Ticket {
        Ticket {
            parts: Vec::new(),
            total: 0,
            ready: Some(labels),
        }
    }

    /// Combines per-shard sub-tickets into one routed ticket. Each
    /// entry pairs a (single-part) sub-ticket with the request-order
    /// positions its labels fill; `total` is the client's node count.
    pub(crate) fn from_routed_parts(parts: Vec<(Ticket, Vec<usize>)>, total: usize) -> Ticket {
        Ticket {
            parts: parts
                .into_iter()
                .map(|(ticket, positions)| {
                    let mut sub = ticket.parts;
                    debug_assert_eq!(sub.len(), 1, "sub-tickets are single-part");
                    let mut part = sub.pop().expect("sub-ticket has one part");
                    part.positions = Some(positions);
                    part
                })
                .collect(),
            total,
            ready: None,
        }
    }

    /// Blocks until the request is answered. Returns the first
    /// per-shard error when any part of a routed request failed;
    /// in particular [`ServeError::ShardFailed`] when the answering
    /// worker died without responding — a dropped responder resolves
    /// the ticket, it never hangs.
    pub fn wait(self) -> Result<Vec<ClassLabel>, ServeError> {
        self.wait_until(None).expect("no deadline given")
    }

    /// Like [`wait`](Self::wait) but gives up after `timeout`,
    /// returning `None` when no answer arrived in time.
    pub fn wait_timeout(self, timeout: Duration) -> Option<Result<Vec<ClassLabel>, ServeError>> {
        self.wait_until(Some(Instant::now() + timeout))
    }

    fn wait_until(self, deadline: Option<Instant>) -> Option<Result<Vec<ClassLabel>, ServeError>> {
        if let Some(labels) = self.ready {
            return Some(Ok(labels));
        }
        let mut assembled = vec![ClassLabel(0); self.total];
        for part in self.parts {
            // A disconnected responder means the worker died with the
            // request in hand: a typed shard failure, never a hang.
            let died = ServeError::ShardFailed { shard: part.shard };
            let result = match deadline {
                None => part.receiver.recv().unwrap_or(Err(died)),
                Some(deadline) => {
                    let timeout = deadline.saturating_duration_since(Instant::now());
                    match part.receiver.recv_timeout(timeout) {
                        Ok(result) => result,
                        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Err(died),
                        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => return None,
                    }
                }
            };
            match result {
                Ok(labels) => match &part.positions {
                    // Unrouted ticket: the part is the whole answer.
                    None => return Some(Ok(labels)),
                    Some(positions) => {
                        for (&pos, label) in positions.iter().zip(labels) {
                            assembled[pos] = label;
                        }
                    }
                },
                Err(e) => return Some(Err(e)),
            }
        }
        Some(Ok(assembled))
    }
}

/// Queue interior: the pending requests plus aggregate node count.
#[derive(Debug, Default)]
struct QueueState {
    pending: VecDeque<PendingRequest>,
    pending_nodes: usize,
    /// Deepest the queue has ever been (in requests) — the operator's
    /// headroom gauge, exported via `ShardStats::queue_high_water`.
    high_water: usize,
    closed: bool,
}

/// Thread-safe batch admission queue (the "batcher").
///
/// Any number of submitter threads call [`submit`](Self::submit); one
/// worker loops on [`next_batch`](Self::next_batch). Closing the queue
/// ([`close`](Self::close)) rejects new submissions while letting the
/// worker drain what was already admitted.
///
/// # Examples
///
/// ```
/// use serve::{AdmissionQueue, BatchPolicy, FlushReason};
/// use std::time::Duration;
///
/// let queue = AdmissionQueue::new(BatchPolicy {
///     max_batch_nodes: 4,
///     max_delay: Duration::from_millis(1),
///     max_queue_requests: 16,
///     shed_high_water: 16, // at the cap: shedding disabled
/// });
/// let t1 = queue.submit(vec![0, 1]).unwrap();
/// let t2 = queue.submit(vec![2, 3]).unwrap();
///
/// // 4 pending nodes hit the size bound: both requests flush together.
/// let (batch, reason) = queue.next_batch().unwrap();
/// assert_eq!(reason, FlushReason::Full);
/// assert_eq!(batch.len(), 2);
///
/// // The worker answers each request; tickets resolve.
/// for request in batch {
///     let echo = request.nodes().iter().map(|&n| tee::ClassLabel(n)).collect();
///     request.respond(Ok(echo));
/// }
/// assert_eq!(t1.wait().unwrap(), vec![tee::ClassLabel(0), tee::ClassLabel(1)]);
/// assert_eq!(t2.wait().unwrap().len(), 2);
/// ```
#[derive(Debug)]
pub struct AdmissionQueue {
    policy: BatchPolicy,
    /// Which engine shard this queue feeds (0 for a standalone queue):
    /// stamped into every ticket so a dead worker resolves to a typed
    /// [`ServeError::ShardFailed`] naming the culprit.
    shard: usize,
    state: Mutex<QueueState>,
    arrived: Condvar,
}

impl AdmissionQueue {
    /// Creates a standalone queue (shard 0) with the given policy.
    /// Zero-valued size knobs are clamped to 1 so the queue can always
    /// make progress.
    pub fn new(policy: BatchPolicy) -> Self {
        Self::for_shard(policy, 0)
    }

    /// Like [`AdmissionQueue::new`], but feeding engine shard `shard`.
    pub fn for_shard(policy: BatchPolicy, shard: usize) -> Self {
        Self {
            policy: BatchPolicy {
                max_batch_nodes: policy.max_batch_nodes.max(1),
                max_delay: policy.max_delay,
                max_queue_requests: policy.max_queue_requests.max(1),
                shed_high_water: policy.shed_high_water.max(1),
            },
            shard,
            state: Mutex::new(QueueState::default()),
            arrived: Condvar::new(),
        }
    }

    /// The (normalized) policy this queue runs under.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Number of requests currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").pending.len()
    }

    /// Whether no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the queue has ever been, in requests — a backlog
    /// headroom gauge against `max_queue_requests`/`shed_high_water`.
    pub fn high_water(&self) -> usize {
        self.state.lock().expect("queue lock").high_water
    }

    /// Admits a request for the given nodes, returning the ticket the
    /// client blocks on.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] for an empty node list or a full queue;
    /// [`ServeError::Overloaded`] (with a retry-after hint) past the
    /// shedding high-water mark; [`ServeError::Closed`] after
    /// [`close`](Self::close).
    pub fn submit(&self, nodes: Vec<usize>) -> Result<Ticket, ServeError> {
        self.submit_as(ClientId::ANONYMOUS, nodes)
    }

    /// Like [`submit`](Self::submit), but stamps the request with the
    /// submitting session's identity so the worker (and any abuse
    /// accounting) can attribute it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`submit`](Self::submit).
    pub fn submit_as(&self, client: ClientId, nodes: Vec<usize>) -> Result<Ticket, ServeError> {
        if nodes.is_empty() {
            return Err(ServeError::Rejected {
                reason: "request contains no query nodes".into(),
            });
        }
        let (responder, receiver) = channel();
        {
            let mut state = self.state.lock().expect("queue lock");
            if state.closed {
                return Err(ServeError::Closed);
            }
            if state.pending.len() >= self.policy.max_queue_requests {
                return Err(ServeError::Rejected {
                    reason: format!(
                        "queue full: {} requests pending (cap {})",
                        state.pending.len(),
                        self.policy.max_queue_requests
                    ),
                });
            }
            if state.pending.len() >= self.policy.shed_high_water {
                return Err(ServeError::Overloaded {
                    queued: state.pending.len(),
                    retry_after: self.drain_hint(&state),
                });
            }
            state.pending_nodes += nodes.len();
            state.pending.push_back(PendingRequest {
                nodes,
                client,
                enqueued_at: Instant::now(),
                responder,
            });
            state.high_water = state.high_water.max(state.pending.len());
        }
        self.arrived.notify_all();
        Ok(Ticket::from_receiver(receiver, self.shard))
    }

    /// Estimates how long the present backlog takes to drain — the
    /// retry-after hint attached to [`ServeError::Overloaded`]. Derived
    /// from the pending node count and the flush cadence (one
    /// `max_batch_nodes` batch per `max_delay` in the worst case),
    /// clamped to stay a useful hint rather than a promise.
    fn drain_hint(&self, state: &QueueState) -> Duration {
        let pending_batches = state.pending_nodes / self.policy.max_batch_nodes + 1;
        let per_batch = self.policy.max_delay.max(Duration::from_micros(500));
        per_batch * pending_batches.min(64) as u32
    }

    /// Blocks until a batch is due and returns it, or `None` once the
    /// queue is closed *and* drained (the worker's exit signal).
    ///
    /// The returned batch takes whole requests in arrival order until
    /// the size bound is met; it always contains at least one request.
    pub fn next_batch(&self) -> Option<(Vec<PendingRequest>, FlushReason)> {
        loop {
            match self.poll_batch(Duration::from_secs(3600)) {
                BatchPoll::Batch(batch, reason) => return Some((batch, reason)),
                BatchPoll::Idle => continue,
                BatchPoll::Drained => return None,
            }
        }
    }

    /// Like [`next_batch`](Self::next_batch), but bounded: waits at
    /// most `max_wait` (and at most one condvar wake) before reporting
    /// [`BatchPoll::Idle`]. A worker that interleaves queue work with a
    /// control channel loops on this instead of `next_batch`, calling
    /// [`notify`](Self::notify) from the control side to cut the wait
    /// short.
    pub fn poll_batch(&self, max_wait: Duration) -> BatchPoll {
        let give_up = Instant::now() + max_wait;
        let mut state = self.state.lock().expect("queue lock");
        let mut waited = false;
        loop {
            if state.closed {
                if state.pending.is_empty() {
                    return BatchPoll::Drained;
                }
                return BatchPoll::Batch(
                    Self::take_batch(&mut state, &self.policy),
                    FlushReason::Drain,
                );
            }
            if state.pending_nodes >= self.policy.max_batch_nodes {
                return BatchPoll::Batch(
                    Self::take_batch(&mut state, &self.policy),
                    FlushReason::Full,
                );
            }
            let now = Instant::now();
            let mut wake_at = give_up;
            if let Some(oldest) = state.pending.front() {
                let deadline = oldest.enqueued_at + self.policy.max_delay;
                if now >= deadline {
                    return BatchPoll::Batch(
                        Self::take_batch(&mut state, &self.policy),
                        FlushReason::Deadline,
                    );
                }
                wake_at = wake_at.min(deadline);
            }
            if waited || now >= give_up {
                return BatchPoll::Idle;
            }
            let (next, _) = self
                .arrived
                .wait_timeout(state, wake_at - now)
                .expect("queue wait");
            state = next;
            waited = true;
        }
    }

    /// Wakes a worker blocked in [`poll_batch`](Self::poll_batch) so it
    /// returns promptly (with a due batch if one exists, otherwise
    /// [`BatchPoll::Idle`]). Used to make out-of-band control messages
    /// — e.g. a hot-swap deploy — visible without waiting out the poll.
    pub fn notify(&self) {
        // Take the lock so the wake cannot slip between a waiter's
        // predicate check and its wait.
        let _guard = self.state.lock().expect("queue lock");
        self.arrived.notify_all();
    }

    /// Pops requests (oldest first) until the size bound is satisfied or
    /// the queue empties; at least one request is taken.
    fn take_batch(state: &mut QueueState, policy: &BatchPolicy) -> Vec<PendingRequest> {
        let mut batch = Vec::new();
        let mut nodes = 0usize;
        while let Some(front) = state.pending.front() {
            if !batch.is_empty() && nodes + front.nodes.len() > policy.max_batch_nodes {
                break;
            }
            let request = state.pending.pop_front().expect("front exists");
            nodes += request.nodes.len();
            state.pending_nodes -= request.nodes.len();
            batch.push(request);
            if nodes >= policy.max_batch_nodes {
                break;
            }
        }
        batch
    }

    /// Closes the queue: new submissions fail with
    /// [`ServeError::Closed`], already-admitted requests remain
    /// drainable via [`next_batch`](Self::next_batch).
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.arrived.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn policy(max_nodes: usize, delay_ms: u64, cap: usize) -> BatchPolicy {
        BatchPolicy {
            max_batch_nodes: max_nodes,
            max_delay: Duration::from_millis(delay_ms),
            max_queue_requests: cap,
            shed_high_water: cap, // shedding off unless a test opts in
        }
    }

    #[test]
    fn size_bound_flushes_without_waiting_out_the_deadline() {
        let queue = AdmissionQueue::new(policy(4, 10_000, 100));
        let _t1 = queue.submit(vec![0, 1]).unwrap();
        let _t2 = queue.submit(vec![2, 3]).unwrap();
        let start = Instant::now();
        let (batch, reason) = queue.next_batch().unwrap();
        assert_eq!(reason, FlushReason::Full);
        assert_eq!(batch.len(), 2);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "size-bound flush must not wait for the deadline"
        );
        assert!(queue.is_empty());
    }

    #[test]
    fn deadline_flushes_a_partial_batch() {
        let queue = AdmissionQueue::new(policy(1_000, 20, 100));
        let _t = queue.submit(vec![7]).unwrap();
        let start = Instant::now();
        let (batch, reason) = queue.next_batch().unwrap();
        assert_eq!(reason, FlushReason::Deadline);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].nodes(), &[7]);
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn batch_splits_at_the_node_bound() {
        let queue = AdmissionQueue::new(policy(3, 1, 100));
        let _a = queue.submit(vec![0, 1]).unwrap();
        let _b = queue.submit(vec![2, 3]).unwrap();
        // 4 pending ≥ 3: flush takes the first request, and the second
        // would overflow the bound, so it stays queued.
        let (batch, _) = queue.next_batch().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].nodes(), &[0, 1]);
        assert_eq!(queue.len(), 1);
    }

    #[test]
    fn oversized_request_forms_its_own_batch() {
        let queue = AdmissionQueue::new(policy(2, 1, 100));
        let _t = queue.submit(vec![0, 1, 2, 3, 4]).unwrap();
        let (batch, _) = queue.next_batch().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].nodes().len(), 5);
    }

    #[test]
    fn admission_control_rejects_over_cap_and_empty() {
        let queue = AdmissionQueue::new(policy(100, 1, 2));
        let _a = queue.submit(vec![0]).unwrap();
        let _b = queue.submit(vec![1]).unwrap();
        assert!(matches!(
            queue.submit(vec![2]),
            Err(ServeError::Rejected { .. })
        ));
        assert!(matches!(
            queue.submit(vec![]),
            Err(ServeError::Rejected { .. })
        ));
    }

    #[test]
    fn close_rejects_new_but_drains_old() {
        let queue = AdmissionQueue::new(policy(100, 10_000, 100));
        let _t = queue.submit(vec![0]).unwrap();
        queue.close();
        assert!(matches!(queue.submit(vec![1]), Err(ServeError::Closed)));
        let (batch, reason) = queue.next_batch().unwrap();
        assert_eq!(reason, FlushReason::Drain);
        assert_eq!(batch.len(), 1);
        assert!(queue.next_batch().is_none(), "drained queue signals exit");
    }

    #[test]
    fn submissions_carry_their_client_identity() {
        let queue = AdmissionQueue::new(policy(100, 1, 100));
        let _a = queue.submit(vec![0]).unwrap();
        let _b = queue.submit_as(ClientId(42), vec![1]).unwrap();
        let (batch, _) = queue.next_batch().unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].client(), ClientId::ANONYMOUS);
        assert_eq!(batch[1].client(), ClientId(42));
    }

    #[test]
    fn dropped_ticket_does_not_poison_the_worker() {
        let queue = AdmissionQueue::new(policy(1, 1, 100));
        let ticket = queue.submit(vec![0]).unwrap();
        drop(ticket);
        let (batch, _) = queue.next_batch().unwrap();
        for request in batch {
            request.respond(Ok(vec![])); // must not panic
        }
    }

    #[test]
    fn unanswered_request_resolves_ticket_to_shard_failed() {
        let queue = AdmissionQueue::for_shard(policy(1, 1, 100), 3);
        let ticket = queue.submit(vec![0]).unwrap();
        let (batch, _) = queue.next_batch().unwrap();
        drop(batch); // worker dies without responding
        assert_eq!(ticket.wait(), Err(ServeError::ShardFailed { shard: 3 }));
    }

    #[test]
    fn high_water_mark_sheds_with_a_retry_hint() {
        let queue = AdmissionQueue::new(BatchPolicy {
            shed_high_water: 2,
            ..policy(100, 1, 10)
        });
        let _a = queue.submit(vec![0]).unwrap();
        let _b = queue.submit(vec![1]).unwrap();
        match queue.submit(vec![2]) {
            Err(ServeError::Overloaded {
                queued,
                retry_after,
            }) => {
                assert_eq!(queued, 2);
                assert!(retry_after > Duration::ZERO, "hint must be actionable");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Shedding is softer than the cap: draining reopens admission.
        let (batch, _) = queue.next_batch().unwrap();
        assert_eq!(batch.len(), 2);
        assert!(queue.submit(vec![2]).is_ok());
    }

    #[test]
    fn concurrent_submitters_all_get_batched() {
        let queue = Arc::new(AdmissionQueue::new(policy(8, 5, 1_000)));
        let mut handles = Vec::new();
        for t in 0..4 {
            let queue = Arc::clone(&queue);
            handles.push(std::thread::spawn(move || {
                (0..25)
                    .map(|i| queue.submit(vec![t * 100 + i]).unwrap())
                    .collect::<Vec<_>>()
            }));
        }
        // Worker: echo every node id back as its "label".
        let worker = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut served = 0usize;
                while served < 100 {
                    let Some((batch, _)) = queue.next_batch() else {
                        break;
                    };
                    for request in batch {
                        served += 1;
                        let echo = request.nodes().iter().map(|&n| ClassLabel(n)).collect();
                        request.respond(Ok(echo));
                    }
                }
                served
            })
        };
        for handle in handles {
            for (i, ticket) in handle.join().unwrap().into_iter().enumerate() {
                let labels = ticket.wait().unwrap();
                assert_eq!(labels.len(), 1);
                assert_eq!(labels[0].0 % 100, i);
            }
        }
        assert_eq!(worker.join().unwrap(), 100);
    }
}
