//! Deterministic fault injection for chaos-testing the serving runtime
//! (compiled only under the `fault-injection` cargo feature).
//!
//! A [`FaultPlan`] is a *schedule*, not a probability: each entry names
//! the shard and the batch ordinal (a per-shard counter starting at 1)
//! it fires on, so a chaos run is reproducible bit-for-bit — the same
//! plan against the same request stream injects the same faults in the
//! same places. Plans are built explicitly ([`FaultPlan::with_fault`]),
//! generated from a seed ([`FaultPlan::random`]), and serialize to a
//! deterministic little-endian byte format ([`FaultPlan::to_bytes`])
//! so a failing schedule can be stored alongside the bug report that
//! cites it.
//!
//! The hooks live inside the shard worker and the deploy path of
//! [`ServingEngine`](crate::ServingEngine); without the feature the
//! engine compiles with no injection code at all.

use std::time::Duration;

/// One injected fault: where (shard), when (per-shard batch ordinal or
/// deploy attempt), and what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the shard's batch execution — exercises the
    /// `catch_unwind` supervision and restore-from-snapshot path.
    PanicAt {
        /// Shard the panic fires on.
        shard: usize,
        /// Per-shard batch ordinal (1-based) that panics.
        batch_n: u64,
    },
    /// Stall the shard's batch execution by `delay` — exercises
    /// per-request timeouts and deploy-under-load behaviour.
    SlowBatch {
        /// Shard the stall fires on.
        shard: usize,
        /// Per-shard batch ordinal (1-based) that stalls.
        batch_n: u64,
        /// How long the batch execution is delayed.
        delay: Duration,
    },
    /// Fail the shard's next `attempts` snapshot-install attempts —
    /// exercises deploy retry, all-or-nothing rollback, and recovery.
    FailDeploy {
        /// Shard whose installs fail.
        shard: usize,
        /// How many consecutive install attempts fail (set it above
        /// the engine's deploy retry budget to fail the deploy).
        attempts: u32,
    },
    /// Drop one computed answer after the batch executed — the client's
    /// ticket sees the responder disconnect, exercising the
    /// dropped-responder → `ShardFailed` path.
    DropTicket {
        /// Shard the drop fires on.
        shard: usize,
        /// Per-shard batch ordinal (1-based) whose first request's
        /// answer is dropped.
        batch_n: u64,
    },
}

/// A seeded, serializable schedule of injected faults.
///
/// Threaded into the engine through
/// [`ServeConfig::fault_plan`](crate::ServeConfig) (present only under
/// the `fault-injection` feature).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

/// Serialization magic: `"FPL1"` little-endian.
const MAGIC: u32 = 0x314C_5046;

/// SplitMix64 — the same generator family the router's hash uses, here
/// as a stream for [`FaultPlan::random`].
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl FaultPlan {
    /// An empty plan carrying `seed` (a label for provenance; an empty
    /// plan injects nothing).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Builder: appends one fault to the schedule.
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The seed this plan was built from (or labelled with).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Generates a reproducible schedule for a `shards`-shard engine
    /// from `seed`: every shard gets one panic at a batch ordinal in
    /// `1..=horizon`, about half the shards get a short (1–3 ms) slow
    /// batch, about a quarter get a dropped ticket, and exactly one
    /// shard gets a burst of install failures. The same `(seed, shards,
    /// horizon)` always yields the same plan.
    pub fn random(seed: u64, shards: usize, horizon: u64) -> Self {
        let shards = shards.max(1);
        let horizon = horizon.max(1);
        let mut rng = SplitMix64(seed);
        let mut plan = Self::new(seed);
        for shard in 0..shards {
            plan.faults.push(Fault::PanicAt {
                shard,
                batch_n: 1 + rng.next() % horizon,
            });
            if rng.next().is_multiple_of(2) {
                plan.faults.push(Fault::SlowBatch {
                    shard,
                    batch_n: 1 + rng.next() % horizon,
                    delay: Duration::from_millis(1 + rng.next() % 3),
                });
            }
            if rng.next().is_multiple_of(4) {
                plan.faults.push(Fault::DropTicket {
                    shard,
                    batch_n: 1 + rng.next() % horizon,
                });
            }
        }
        plan.faults.push(Fault::FailDeploy {
            shard: (rng.next() % shards as u64) as usize,
            attempts: 1 + (rng.next() % 3) as u32,
        });
        plan
    }

    /// Serializes the plan to a deterministic little-endian byte
    /// format (round-trips through [`FaultPlan::from_bytes`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.faults.len() as u64).to_le_bytes());
        for fault in &self.faults {
            match fault {
                Fault::PanicAt { shard, batch_n } => {
                    out.push(0);
                    out.extend_from_slice(&(*shard as u64).to_le_bytes());
                    out.extend_from_slice(&batch_n.to_le_bytes());
                }
                Fault::SlowBatch {
                    shard,
                    batch_n,
                    delay,
                } => {
                    out.push(1);
                    out.extend_from_slice(&(*shard as u64).to_le_bytes());
                    out.extend_from_slice(&batch_n.to_le_bytes());
                    out.extend_from_slice(&(delay.as_nanos() as u64).to_le_bytes());
                }
                Fault::FailDeploy { shard, attempts } => {
                    out.push(2);
                    out.extend_from_slice(&(*shard as u64).to_le_bytes());
                    out.extend_from_slice(&attempts.to_le_bytes());
                }
                Fault::DropTicket { shard, batch_n } => {
                    out.push(3);
                    out.extend_from_slice(&(*shard as u64).to_le_bytes());
                    out.extend_from_slice(&batch_n.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decodes a plan serialized by [`FaultPlan::to_bytes`].
    ///
    /// # Errors
    ///
    /// A human-readable reason when the bytes are truncated, carry the
    /// wrong magic, or contain an unknown fault tag.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut reader = Reader { bytes, at: 0 };
        if reader.u32()? != MAGIC {
            return Err("fault plan bytes carry the wrong magic".into());
        }
        let seed = reader.u64()?;
        let count = reader.u64()?;
        let mut faults = Vec::new();
        for _ in 0..count {
            let fault = match reader.u8()? {
                0 => Fault::PanicAt {
                    shard: reader.u64()? as usize,
                    batch_n: reader.u64()?,
                },
                1 => Fault::SlowBatch {
                    shard: reader.u64()? as usize,
                    batch_n: reader.u64()?,
                    delay: Duration::from_nanos(reader.u64()?),
                },
                2 => Fault::FailDeploy {
                    shard: reader.u64()? as usize,
                    attempts: reader.u32()?,
                },
                3 => Fault::DropTicket {
                    shard: reader.u64()? as usize,
                    batch_n: reader.u64()?,
                },
                tag => return Err(format!("unknown fault tag {tag}")),
            };
            faults.push(fault);
        }
        Ok(Self { seed, faults })
    }

    /// Extracts the faults aimed at one shard — the bundle a worker
    /// thread carries so firing a hook never touches shared state.
    pub(crate) fn shard_faults(&self, shard: usize) -> ShardFaults {
        let mut faults = ShardFaults::default();
        for fault in &self.faults {
            match *fault {
                Fault::PanicAt { shard: s, batch_n } if s == shard => faults.panics.push(batch_n),
                Fault::SlowBatch {
                    shard: s,
                    batch_n,
                    delay,
                } if s == shard => faults.slows.push((batch_n, delay)),
                Fault::FailDeploy { shard: s, attempts } if s == shard => {
                    faults.fail_deploys += attempts;
                }
                Fault::DropTicket { shard: s, batch_n } if s == shard => faults.drops.push(batch_n),
                _ => {}
            }
        }
        faults
    }
}

/// Bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err("fault plan bytes are truncated".into());
        };
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// The slice of a [`FaultPlan`] one shard worker carries: per-ordinal
/// triggers plus a consumable install-failure budget.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardFaults {
    panics: Vec<u64>,
    slows: Vec<(u64, Duration)>,
    drops: Vec<u64>,
    fail_deploys: u32,
}

impl ShardFaults {
    /// Whether batch ordinal `n` is scheduled to panic.
    pub(crate) fn should_panic(&self, n: u64) -> bool {
        self.panics.contains(&n)
    }

    /// The injected stall for batch ordinal `n`, if any (multiple
    /// entries for one ordinal add up).
    pub(crate) fn slow_delay(&self, n: u64) -> Option<Duration> {
        let total: Duration = self
            .slows
            .iter()
            .filter(|(at, _)| *at == n)
            .map(|(_, delay)| *delay)
            .sum();
        (total > Duration::ZERO).then_some(total)
    }

    /// Whether batch ordinal `n` drops its first answer.
    pub(crate) fn should_drop(&self, n: u64) -> bool {
        self.drops.contains(&n)
    }

    /// Consumes one install-failure credit; `true` means this install
    /// attempt must fail.
    pub(crate) fn take_deploy_failure(&mut self) -> bool {
        if self.fail_deploys == 0 {
            return false;
        }
        self.fail_deploys -= 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_codec_round_trips() {
        let plan = FaultPlan::new(42)
            .with_fault(Fault::PanicAt {
                shard: 1,
                batch_n: 3,
            })
            .with_fault(Fault::SlowBatch {
                shard: 0,
                batch_n: 2,
                delay: Duration::from_millis(7),
            })
            .with_fault(Fault::FailDeploy {
                shard: 2,
                attempts: 4,
            })
            .with_fault(Fault::DropTicket {
                shard: 3,
                batch_n: 1,
            });
        let bytes = plan.to_bytes();
        assert_eq!(FaultPlan::from_bytes(&bytes).unwrap(), plan);
    }

    #[test]
    fn decoder_rejects_malformed_bytes() {
        assert!(FaultPlan::from_bytes(&[]).is_err());
        assert!(FaultPlan::from_bytes(b"not a fault plan").is_err());
        let mut bytes = FaultPlan::new(1)
            .with_fault(Fault::PanicAt {
                shard: 0,
                batch_n: 1,
            })
            .to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(FaultPlan::from_bytes(&bytes).is_err(), "truncated payload");
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(7, 4, 6);
        let b = FaultPlan::random(7, 4, 6);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, FaultPlan::random(8, 4, 6), "different seed differs");
        // Every shard is scheduled to panic at least once.
        for shard in 0..4 {
            assert!(a
                .faults()
                .iter()
                .any(|f| matches!(f, Fault::PanicAt { shard: s, .. } if *s == shard)));
        }
        // Exactly one install-failure burst.
        assert_eq!(
            a.faults()
                .iter()
                .filter(|f| matches!(f, Fault::FailDeploy { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn shard_faults_filter_and_consume() {
        let plan = FaultPlan::new(0)
            .with_fault(Fault::PanicAt {
                shard: 1,
                batch_n: 2,
            })
            .with_fault(Fault::SlowBatch {
                shard: 1,
                batch_n: 2,
                delay: Duration::from_millis(1),
            })
            .with_fault(Fault::SlowBatch {
                shard: 1,
                batch_n: 2,
                delay: Duration::from_millis(2),
            })
            .with_fault(Fault::FailDeploy {
                shard: 1,
                attempts: 2,
            })
            .with_fault(Fault::DropTicket {
                shard: 0,
                batch_n: 5,
            });
        let mut one = plan.shard_faults(1);
        assert!(one.should_panic(2) && !one.should_panic(1));
        assert_eq!(one.slow_delay(2), Some(Duration::from_millis(3)));
        assert_eq!(one.slow_delay(3), None);
        assert!(!one.should_drop(5), "drop belongs to shard 0");
        assert!(one.take_deploy_failure());
        assert!(one.take_deploy_failure());
        assert!(!one.take_deploy_failure(), "budget consumed");
        let zero = plan.shard_faults(0);
        assert!(zero.should_drop(5));
        assert!(!zero.should_panic(2));
    }
}
