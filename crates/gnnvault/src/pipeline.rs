//! End-to-end GNNVault pipeline: the four steps of Fig. 2 plus the
//! evaluation bundle used by every table in the paper.
//!
//! ```text
//! 1. substitute graph  ->  2. train backbone  ->  3. train rectifier
//!                                        -> 4. deploy (Vault)
//! ```

use crate::{
    Backbone, ModelConfig, OriginalGnn, Rectifier, RectifierKind, SubstituteKind, Vault, VaultError,
};
use datasets::CitationDataset;
use graph::normalization;
use nn::TrainConfig;
use serde::{Deserialize, Serialize};
use tee::{CostModel, OverBudgetPolicy, SealKey};

/// Configuration for one full pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Architecture preset (M1/M2/M3 or custom).
    pub model: ModelConfig,
    /// Substitute-graph construction for the backbone.
    pub substitute: SubstituteKind,
    /// Rectifier communication scheme.
    pub rectifier: RectifierKind,
    /// Training epochs (applied to backbone, rectifier, and reference).
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Dropout on layer inputs during training.
    pub dropout: f32,
    /// Master seed (substitute generation, init, dropout).
    pub seed: u64,
    /// Whether to also train the unprotected reference model (`porg`).
    pub train_original: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            model: ModelConfig::m1(7),
            substitute: SubstituteKind::Knn { k: 2 },
            rectifier: RectifierKind::Parallel,
            epochs: 200,
            lr: 0.01,
            weight_decay: 5e-4,
            dropout: 0.5,
            seed: 0,
            train_original: true,
        }
    }
}

impl PipelineConfig {
    fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            lr: self.lr,
            weight_decay: self.weight_decay,
            dropout: self.dropout,
            seed: self.seed,
        }
    }
}

/// Output of [`train`]: the partitioned model pair plus the optional
/// unprotected reference.
#[derive(Debug, Clone)]
pub struct TrainedGnnVault {
    /// Public backbone (untrusted world).
    pub backbone: Backbone,
    /// Private rectifier (enclave world, pre-deployment).
    pub rectifier: Rectifier,
    /// Unprotected reference model, when requested.
    pub original: Option<OriginalGnn>,
    /// The configuration that produced this bundle.
    pub config: PipelineConfig,
}

/// Accuracy bundle matching the columns of Tables II–III.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// `porg`: unprotected reference accuracy (NaN when not trained).
    pub original_accuracy: f32,
    /// `pbb`: public backbone accuracy in the untrusted world.
    pub backbone_accuracy: f32,
    /// `prec`: rectified accuracy.
    pub rectifier_accuracy: f32,
    /// `θbb`: backbone parameter count.
    pub backbone_params: usize,
    /// `θrec`: rectifier parameter count.
    pub rectifier_params: usize,
}

impl Evaluation {
    /// Protection margin `Δp = prec − pbb` (Table II; higher is better).
    pub fn protection_margin(&self) -> f32 {
        self.rectifier_accuracy - self.backbone_accuracy
    }

    /// Accuracy degradation `porg − prec` (lower is better; the paper
    /// reports < 2 % on every dataset).
    pub fn accuracy_degradation(&self) -> f32 {
        self.original_accuracy - self.rectifier_accuracy
    }
}

/// Runs pipeline steps 1–3: substitute graph, backbone training, and
/// rectifier training (plus the reference model when configured).
///
/// # Errors
///
/// Propagates substitute, architecture, and training failures.
///
/// # Examples
///
/// See the crate-level example.
pub fn train(
    data: &CitationDataset,
    config: &PipelineConfig,
) -> Result<TrainedGnnVault, VaultError> {
    let cfg = config.train_config();

    // Steps 1–2: substitute graph + public backbone.
    let backbone = Backbone::train(
        &data.features,
        &data.labels,
        &data.train_mask,
        config.substitute,
        &config.model.backbone_channels,
        data.graph.num_edges(),
        &cfg,
        config.seed,
    )?;

    // Step 3: private rectifier on the real adjacency, backbone frozen.
    let real_adj = normalization::gcn_normalize(&data.graph);
    let embeddings = backbone.embeddings(&data.features)?;
    let mut rectifier = Rectifier::new(
        config.rectifier,
        &config.model.rectifier_channels,
        &backbone.channel_dims(),
        config.seed.wrapping_add(1),
    )?;
    rectifier.fit(&real_adj, &embeddings, &data.labels, &data.train_mask, &cfg)?;

    let original = if config.train_original {
        Some(OriginalGnn::train(
            &data.graph,
            &data.features,
            &data.labels,
            &data.train_mask,
            &config.model.backbone_channels,
            &cfg,
            config.seed,
        )?)
    } else {
        None
    };

    Ok(TrainedGnnVault {
        backbone,
        rectifier,
        original,
        config: config.clone(),
    })
}

/// Computes the Table II/III accuracy bundle on the dataset's test mask.
///
/// # Errors
///
/// Propagates forward-pass failures.
pub fn evaluate(
    trained: &TrainedGnnVault,
    data: &CitationDataset,
) -> Result<Evaluation, VaultError> {
    let real_adj = normalization::gcn_normalize(&data.graph);
    let embeddings = trained.backbone.embeddings(&data.features)?;

    let backbone_preds = trained.backbone.predict(&data.features)?;
    let backbone_accuracy =
        metrics::masked_accuracy(&backbone_preds, &data.labels, &data.test_mask)
            .unwrap_or(f32::NAN);

    let rect_preds = trained.rectifier.predict(&real_adj, &embeddings)?;
    let rectifier_accuracy =
        metrics::masked_accuracy(&rect_preds, &data.labels, &data.test_mask).unwrap_or(f32::NAN);

    let original_accuracy = match &trained.original {
        Some(model) => {
            let preds = model.predict(&data.features)?;
            metrics::masked_accuracy(&preds, &data.labels, &data.test_mask).unwrap_or(f32::NAN)
        }
        None => f32::NAN,
    };

    Ok(Evaluation {
        original_accuracy,
        backbone_accuracy,
        rectifier_accuracy,
        backbone_params: trained.backbone.param_count(),
        rectifier_params: trained.rectifier.param_count(),
    })
}

/// Runs step 4: seals the trained pair into a simulated SGX enclave with
/// the paper's default resource envelope (96 MB EPC, strict no-paging
/// policy — every GNNVault configuration fits, per Fig. 6).
///
/// # Errors
///
/// Propagates deployment failures (e.g. EPC rejection).
pub fn deploy(trained: TrainedGnnVault, data: &CitationDataset) -> Result<Vault, VaultError> {
    Vault::deploy(
        trained.backbone,
        trained.rectifier,
        &data.graph,
        tee::SGX_EPC_BYTES,
        CostModel::default(),
        OverBudgetPolicy::Fail,
        DEPLOY_SEAL_KEY,
    )
}

/// The fixed sealing key [`deploy`] uses (a real platform would derive
/// it from hardware fuses). Exposed so harness code can unseal what the
/// pipeline sealed — e.g. restore a [`VaultSnapshot`](crate::VaultSnapshot)
/// taken from a pipeline-deployed vault.
pub const DEPLOY_SEAL_KEY: SealKey = SealKey(0x006E_6E76_6175_6C74_u128);

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{DatasetSpec, SyntheticPlanetoid};

    fn small_data() -> CitationDataset {
        SyntheticPlanetoid::new(DatasetSpec::CORA)
            .scale(0.06)
            .seed(3)
            .generate()
            .unwrap()
    }

    fn quick_config(rectifier: RectifierKind) -> PipelineConfig {
        PipelineConfig {
            model: ModelConfig::custom("tiny", &[32, 16, 7], &[16, 8, 7]),
            substitute: SubstituteKind::Knn { k: 2 },
            rectifier,
            epochs: 120,
            lr: 0.02,
            weight_decay: 5e-4,
            dropout: 0.2,
            seed: 0,
            train_original: true,
        }
    }

    #[test]
    fn full_pipeline_reproduces_the_papers_ordering() {
        let data = small_data();
        let trained = train(&data, &quick_config(RectifierKind::Parallel)).unwrap();
        let eval = evaluate(&trained, &data).unwrap();

        // The paper's headline shape: porg > prec > pbb, with the
        // rectifier recovering most of the original accuracy.
        assert!(
            eval.original_accuracy > eval.backbone_accuracy + 0.05,
            "porg {} should clearly beat pbb {}",
            eval.original_accuracy,
            eval.backbone_accuracy
        );
        assert!(
            eval.protection_margin() > 0.05,
            "Δp = {} should be positive",
            eval.protection_margin()
        );
        assert!(
            eval.accuracy_degradation() < 0.10,
            "degradation {} too large",
            eval.accuracy_degradation()
        );
        // And the enclave model is much smaller than the public one.
        assert!(eval.rectifier_params < eval.backbone_params);
    }

    #[test]
    fn all_rectifier_kinds_train_and_help() {
        let data = small_data();
        for kind in RectifierKind::ALL {
            let trained = train(&data, &quick_config(kind)).unwrap();
            let eval = evaluate(&trained, &data).unwrap();
            assert!(
                eval.protection_margin() > 0.0,
                "{kind:?}: Δp = {}",
                eval.protection_margin()
            );
        }
    }

    #[test]
    fn deploy_then_infer_matches_direct_rectifier() {
        let data = small_data();
        let trained = train(&data, &quick_config(RectifierKind::Series)).unwrap();
        let real_adj = normalization::gcn_normalize(&data.graph);
        let embs = trained.backbone.embeddings(&data.features).unwrap();
        let direct = trained.rectifier.predict(&real_adj, &embs).unwrap();

        let mut vault = deploy(trained, &data).unwrap();
        let (labels, report) = vault.infer(&data.features).unwrap();
        let via_vault: Vec<usize> = labels.iter().map(|l| l.0).collect();
        assert_eq!(direct, via_vault, "enclave path must match direct path");
        assert!(report.peak_enclave_bytes < tee::SGX_EPC_BYTES);
    }

    #[test]
    fn dnn_backbone_pipeline_works() {
        let data = small_data();
        let mut cfg = quick_config(RectifierKind::Series);
        cfg.substitute = SubstituteKind::Dnn;
        let trained = train(&data, &cfg).unwrap();
        let eval = evaluate(&trained, &data).unwrap();
        assert!(eval.rectifier_accuracy > eval.backbone_accuracy - 0.05);
    }
}
