use crate::VaultError;
use graph::{substitute, Graph};
use linalg::DenseMatrix;
use serde::{Deserialize, Serialize};

/// How the public substitute adjacency `A′` is constructed (§IV-C), or
/// that the backbone is a plain MLP using no graph at all (the "DNN"
/// backbone of Table III).
///
/// The similarity-based constructions (`Knn`, `CosineThreshold`,
/// `CosineBudget`) run on `linalg::pairwise`'s tiled streaming engine:
/// peak memory is `O(tile · n)` rather than `n²`, so deployments can
/// build substitutes for graphs far beyond the point where a full
/// similarity matrix would fit in RAM.
///
/// # Examples
///
/// ```
/// # use linalg::DenseMatrix;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.9, 0.1], &[0.0, 1.0]])?;
/// let kind = gnnvault::SubstituteKind::Knn { k: 1 };
/// let graph = kind.build(&x, 2, 0)?.expect("knn produces a graph");
/// assert!(graph.num_edges() >= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SubstituteKind {
    /// No substitute graph: the backbone is an MLP on raw features.
    Dnn,
    /// Connect each node to its `k` most cosine-similar nodes (paper
    /// default: `k = 2`).
    Knn {
        /// Neighbours per node.
        k: usize,
    },
    /// Connect pairs whose cosine similarity is at least `tau`
    /// (paper Eq. 2).
    CosineThreshold {
        /// Similarity threshold.
        tau: f32,
    },
    /// Cosine graph whose edge count matches the real graph's (the
    /// density-matched "cosine" backbone of Table III).
    CosineBudget,
    /// Uniformly random graph with `ratio × real_edges` edges (the
    /// "random" backbone; Fig. 5 sweeps the ratio).
    Random {
        /// Edge budget as a fraction of the real graph's edge count.
        ratio: f64,
    },
}

impl SubstituteKind {
    /// Builds the substitute graph from public features.
    ///
    /// `real_edges` is the edge count of the private graph, used only
    /// for density matching (`CosineBudget`, `Random`); it is public in
    /// the paper's threat model only as an approximate budget — the
    /// harness passes the true count for faithfulness to §V-B2.
    ///
    /// Returns `Ok(None)` for [`SubstituteKind::Dnn`].
    ///
    /// # Errors
    ///
    /// Returns [`VaultError::Graph`] when the underlying generator
    /// rejects its parameters.
    pub fn build(
        &self,
        features: &DenseMatrix,
        real_edges: usize,
        seed: u64,
    ) -> Result<Option<Graph>, VaultError> {
        let n = features.rows();
        Ok(match *self {
            SubstituteKind::Dnn => None,
            SubstituteKind::Knn { k } => Some(substitute::knn_graph(features, k)?),
            SubstituteKind::CosineThreshold { tau } => {
                Some(substitute::cosine_graph(features, tau)?)
            }
            SubstituteKind::CosineBudget => {
                let max_edges = n * n.saturating_sub(1) / 2;
                Some(substitute::cosine_graph_with_budget(
                    features,
                    real_edges.min(max_edges),
                )?)
            }
            SubstituteKind::Random { ratio } => {
                if ratio < 0.0 || !ratio.is_finite() {
                    return Err(VaultError::InvalidConfig {
                        reason: format!("random edge ratio must be finite and >= 0, got {ratio}"),
                    });
                }
                let edges = (real_edges as f64 * ratio).round() as usize;
                Some(substitute::random_graph(n, edges, seed)?)
            }
        })
    }

    /// Short name used in table output ("DNN", "KNN", ...).
    pub fn label(&self) -> &'static str {
        match self {
            SubstituteKind::Dnn => "DNN",
            SubstituteKind::Knn { .. } => "KNN",
            SubstituteKind::CosineThreshold { .. } => "cosine",
            SubstituteKind::CosineBudget => "cosine",
            SubstituteKind::Random { .. } => "random",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            &[1.0, 0.0, 0.0],
            &[0.9, 0.1, 0.0],
            &[0.0, 1.0, 0.1],
            &[0.0, 0.9, 0.0],
            &[0.5, 0.5, 1.0],
        ])
        .unwrap()
    }

    #[test]
    fn dnn_builds_nothing() {
        assert!(SubstituteKind::Dnn
            .build(&features(), 4, 0)
            .unwrap()
            .is_none());
    }

    #[test]
    fn knn_and_cosine_build_graphs() {
        let g = SubstituteKind::Knn { k: 2 }
            .build(&features(), 4, 0)
            .unwrap()
            .unwrap();
        assert!(g.num_edges() >= 2);
        let g = SubstituteKind::CosineThreshold { tau: 0.8 }
            .build(&features(), 4, 0)
            .unwrap()
            .unwrap();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn budget_kinds_match_real_density() {
        let real_edges = 4;
        let g = SubstituteKind::CosineBudget
            .build(&features(), real_edges, 0)
            .unwrap()
            .unwrap();
        assert!(g.num_edges() >= real_edges);
        let g = SubstituteKind::Random { ratio: 1.0 }
            .build(&features(), real_edges, 7)
            .unwrap()
            .unwrap();
        assert_eq!(g.num_edges(), real_edges);
        let half = SubstituteKind::Random { ratio: 0.5 }
            .build(&features(), real_edges, 7)
            .unwrap()
            .unwrap();
        assert_eq!(half.num_edges(), 2);
    }

    #[test]
    fn invalid_ratio_rejected() {
        assert!(SubstituteKind::Random { ratio: -1.0 }
            .build(&features(), 4, 0)
            .is_err());
        assert!(SubstituteKind::Random { ratio: f64::NAN }
            .build(&features(), 4, 0)
            .is_err());
    }

    #[test]
    fn labels_match_table3_columns() {
        assert_eq!(SubstituteKind::Dnn.label(), "DNN");
        assert_eq!(SubstituteKind::Knn { k: 2 }.label(), "KNN");
        assert_eq!(SubstituteKind::CosineBudget.label(), "cosine");
        assert_eq!(SubstituteKind::Random { ratio: 1.0 }.label(), "random");
    }
}
