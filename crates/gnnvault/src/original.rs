use crate::VaultError;
use graph::{normalization, Graph};
use linalg::{CsrMatrix, DenseMatrix};
use nn::{GcnNetwork, TrainConfig};
use serde::{Deserialize, Serialize};

/// The unprotected reference GNN (`porg` in the paper's tables): same
/// architecture as the backbone, trained and run with the *real*
/// adjacency matrix. Deploying this directly is exactly the insecure
/// baseline GNNVault exists to avoid — it is kept for evaluation and for
/// the `Morg` link-stealing attack surface.
///
/// # Examples
///
/// ```
/// use gnnvault::OriginalGnn;
/// use graph::Graph;
/// use linalg::DenseMatrix;
/// use nn::TrainConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(4, &[(0, 1), (2, 3)])?;
/// let x = DenseMatrix::from_rows(&[&[1.0], &[0.9], &[0.0], &[0.1]])?;
/// let cfg = TrainConfig { epochs: 20, ..Default::default() };
/// let model = OriginalGnn::train(&g, &x, &[0, 0, 1, 1], &[0, 2], &[4, 2], &cfg, 0)?;
/// assert_eq!(model.predict(&x)?.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OriginalGnn {
    network: GcnNetwork,
    real_adj: CsrMatrix,
}

impl OriginalGnn {
    /// Trains the reference model on the real graph.
    ///
    /// # Errors
    ///
    /// Propagates architecture and training failures.
    pub fn train(
        real_graph: &Graph,
        features: &DenseMatrix,
        labels: &[usize],
        train_mask: &[usize],
        channels: &[usize],
        cfg: &TrainConfig,
        seed: u64,
    ) -> Result<OriginalGnn, VaultError> {
        let real_adj = normalization::gcn_normalize(real_graph);
        let mut network = GcnNetwork::new(features.cols(), channels, seed)?;
        network.fit(&real_adj, features, labels, train_mask, cfg)?;
        Ok(OriginalGnn { network, real_adj })
    }

    /// Per-layer embeddings (the `Morg` attack surface of Table IV).
    ///
    /// # Errors
    ///
    /// Returns [`VaultError::Nn`] on shape inconsistencies.
    pub fn embeddings(&self, features: &DenseMatrix) -> Result<Vec<DenseMatrix>, VaultError> {
        Ok(self.network.forward_embeddings(&self.real_adj, features)?)
    }

    /// Predicted classes.
    ///
    /// # Errors
    ///
    /// Returns [`VaultError::Nn`] on shape inconsistencies.
    pub fn predict(&self, features: &DenseMatrix) -> Result<Vec<usize>, VaultError> {
        Ok(self.network.predict(&self.real_adj, features)?)
    }

    /// Trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.network.param_count()
    }

    /// The trained network (read-only).
    pub fn network(&self) -> &GcnNetwork {
        &self.network
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_on_real_graph_and_uses_structure() {
        // Features are useless (all equal); only the graph separates
        // the two communities, so accuracy > chance proves the real
        // adjacency is used.
        let n = 12;
        let mut edges: Vec<(usize, usize)> = (0..5).map(|i| (i, i + 1)).collect();
        edges.extend((6..11).map(|i| (i, i + 1)));
        // Join train nodes tightly within each community.
        edges.push((0, 2));
        edges.push((6, 8));
        let g = Graph::from_edges(n, &edges).unwrap();
        // One-hot position features so the GCN can propagate identity.
        let x = DenseMatrix::identity(n);
        let labels: Vec<usize> = (0..n).map(|i| usize::from(i >= 6)).collect();
        let train = vec![0, 1, 2, 6, 7, 8];
        let cfg = TrainConfig {
            epochs: 150,
            lr: 0.05,
            weight_decay: 0.0,
            dropout: 0.0,
            seed: 0,
        };
        let model = OriginalGnn::train(&g, &x, &labels, &train, &[8, 2], &cfg, 1).unwrap();
        let preds = model.predict(&x).unwrap();
        let acc = metrics::accuracy(&preds, &labels).unwrap();
        assert!(acc >= 0.8, "accuracy {acc}");
        assert_eq!(model.embeddings(&x).unwrap().len(), 2);
        assert_eq!(model.param_count(), 12 * 8 + 8 + 8 * 2 + 2);
    }
}
