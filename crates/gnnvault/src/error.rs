use std::error::Error;
use std::fmt;

/// Error type for GNNVault training and deployment.
#[derive(Debug, Clone, PartialEq)]
pub enum VaultError {
    /// A neural-network operation failed.
    Nn(nn::NnError),
    /// A graph operation failed.
    Graph(graph::GraphError),
    /// A TEE-simulator operation failed.
    Tee(tee::TeeError),
    /// A configuration combination was invalid.
    InvalidConfig {
        /// Description of the problem.
        reason: String,
    },
    /// A vault snapshot could not be decoded (truncated, corrupt, or
    /// internally inconsistent payload).
    Snapshot {
        /// Description of the problem.
        reason: String,
    },
    /// A partition replica was asked about a node another partition
    /// owns. Routing layers must send the query to the owner instead.
    NotOwned {
        /// The queried node.
        node: usize,
        /// The partition that received the query.
        part: usize,
        /// Total number of partitions in the deployment.
        parts: usize,
    },
}

impl fmt::Display for VaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VaultError::Nn(e) => write!(f, "network failure: {e}"),
            VaultError::Graph(e) => write!(f, "graph failure: {e}"),
            VaultError::Tee(e) => write!(f, "enclave failure: {e}"),
            VaultError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            VaultError::Snapshot { reason } => write!(f, "invalid vault snapshot: {reason}"),
            VaultError::NotOwned { node, part, parts } => {
                write!(f, "node {node} is not owned by partition {part} of {parts}")
            }
        }
    }
}

impl Error for VaultError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VaultError::Nn(e) => Some(e),
            VaultError::Graph(e) => Some(e),
            VaultError::Tee(e) => Some(e),
            VaultError::InvalidConfig { .. }
            | VaultError::Snapshot { .. }
            | VaultError::NotOwned { .. } => None,
        }
    }
}

#[doc(hidden)]
impl From<nn::NnError> for VaultError {
    fn from(e: nn::NnError) -> Self {
        VaultError::Nn(e)
    }
}

#[doc(hidden)]
impl From<graph::GraphError> for VaultError {
    fn from(e: graph::GraphError) -> Self {
        VaultError::Graph(e)
    }
}

#[doc(hidden)]
impl From<tee::TeeError> for VaultError {
    fn from(e: tee::TeeError) -> Self {
        VaultError::Tee(e)
    }
}

#[doc(hidden)]
impl From<linalg::LinalgError> for VaultError {
    fn from(e: linalg::LinalgError) -> Self {
        VaultError::Nn(nn::NnError::Linalg(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: VaultError = graph::GraphError::SelfLoop { node: 1 }.into();
        assert!(e.to_string().contains("graph failure"));
        assert!(Error::source(&e).is_some());

        let e: VaultError = tee::TeeError::SealTampered.into();
        assert!(e.to_string().contains("enclave failure"));

        let e = VaultError::InvalidConfig {
            reason: "bad".into(),
        };
        assert!(Error::source(&e).is_none());
    }
}
