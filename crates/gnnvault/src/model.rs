use serde::{Deserialize, Serialize};

/// Architecture preset pairing a backbone with a rectifier, matching the
/// paper's M1/M2/M3 (§V-A "Models").
///
/// Channel lists give each layer's *output* width; the final entry is
/// always the class count `C`.
///
/// # Examples
///
/// ```
/// let m1 = gnnvault::ModelConfig::m1(7);
/// assert_eq!(m1.backbone_channels, vec![128, 32, 7]);
/// assert_eq!(m1.rectifier_channels, vec![128, 32, 7]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name ("M1", "M2", "M3", or custom).
    pub name: String,
    /// Backbone layer output widths, ending in the class count.
    pub backbone_channels: Vec<usize>,
    /// Rectifier layer output widths, ending in the class count.
    pub rectifier_channels: Vec<usize>,
}

impl ModelConfig {
    /// M1: 3-layer GCN backbone `(128, 32, C)` with rectifier
    /// `(128, 32, C)` — used for Cora, Citeseer, Pubmed.
    pub fn m1(classes: usize) -> Self {
        Self {
            name: "M1".into(),
            backbone_channels: vec![128, 32, classes],
            rectifier_channels: vec![128, 32, classes],
        }
    }

    /// M2: wider channels (256) for high class counts — used for
    /// CoraFull. The paper states "wider output channels (256) for both
    /// the backbone and the rectifier"; the exact hidden widths are not
    /// fully specified, so this preset uses backbone `(256, 64, C)` and
    /// rectifier `(128, 32, C)`, which reproduces the reported θ
    /// magnitudes.
    pub fn m2(classes: usize) -> Self {
        Self {
            name: "M2".into(),
            backbone_channels: vec![256, 64, classes],
            rectifier_channels: vec![128, 32, classes],
        }
    }

    /// M3: larger and deeper — backbone `(256, 64, 32, 16, C)` with
    /// rectifier `(64, 32, C)`, used for the Amazon graphs.
    pub fn m3(classes: usize) -> Self {
        Self {
            name: "M3".into(),
            backbone_channels: vec![256, 64, 32, 16, classes],
            rectifier_channels: vec![64, 32, classes],
        }
    }

    /// A compact custom config for tests and small examples.
    pub fn custom(name: &str, backbone: &[usize], rectifier: &[usize]) -> Self {
        Self {
            name: name.into(),
            backbone_channels: backbone.to_vec(),
            rectifier_channels: rectifier.to_vec(),
        }
    }

    /// Class count (last backbone channel).
    ///
    /// # Panics
    ///
    /// Panics if the channel list is empty (configs are always built
    /// through the constructors, which never produce one).
    pub fn classes(&self) -> usize {
        *self
            .backbone_channels
            .last()
            .expect("model config has at least one backbone layer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_shapes() {
        let m1 = ModelConfig::m1(7);
        assert_eq!(m1.classes(), 7);
        let m2 = ModelConfig::m2(70);
        assert_eq!(m2.backbone_channels[0], 256);
        assert_eq!(m2.classes(), 70);
        let m3 = ModelConfig::m3(10);
        assert_eq!(m3.backbone_channels.len(), 5);
        assert_eq!(m3.rectifier_channels, vec![64, 32, 10]);
    }

    #[test]
    fn m1_parameter_count_matches_table2_cora() {
        // Table II reports θbb = 0.188 M for Cora (1433 features):
        // 1433·128 + 128 + 128·32 + 32 + 32·7 + 7 = 187,879.
        let m1 = ModelConfig::m1(7);
        let mut count = 0usize;
        let mut prev = 1433;
        for &c in &m1.backbone_channels {
            count += prev * c + c;
            prev = c;
        }
        assert!((187_000..190_000).contains(&count), "θbb = {count}");
    }

    #[test]
    fn custom_builder() {
        let c = ModelConfig::custom("tiny", &[8, 3], &[4, 3]);
        assert_eq!(c.name, "tiny");
        assert_eq!(c.classes(), 3);
    }
}
