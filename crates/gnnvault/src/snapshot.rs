//! Sealed vault snapshots: a deterministic byte serialization of a
//! trained, deployed [`Vault`](crate::Vault).
//!
//! A snapshot captures everything a replica needs to answer queries
//! bit-identically to the source vault — backbone weights (and the
//! public substitute graph), rectifier weights, the tap-set wiring, the
//! private real graph, and the deployment's enclave configuration
//! (EPC budget, cost model, over-budget policy) — but *not* the public
//! feature corpus, which lives in the untrusted world and is supplied
//! at serving time.
//!
//! The payload is sealed with [`tee::Sealed`] under a key derived from
//! the deployment's [`SealKey`](tee::SealKey) (purpose
//! `"vault-snapshot"`), mirroring SGX sealing-for-migration: the bytes
//! can sit on untrusted storage or cross to another worker, and only a
//! holder of the deployment key can rehydrate them
//! ([`Vault::restore`](crate::Vault::restore)). Encoding is
//! deterministic — same vault, same bytes — and restoration preserves
//! the source vault's epoch, so replicas of one snapshot share a cache
//! identity: `(epoch, node)` keys mean the same answer on every
//! replica.
//!
//! Layout (versionless little-endian, like [`tee::codec`]; both sides
//! are always built from the same binary):
//!
//! ```text
//! magic u64 | epoch u64 | num_nodes u64
//! epc_budget u64 | cost{transition,per_byte,page_swap,slowdown} u64×4
//! policy u8
//! backbone: tag u8 (0 GCN, 1 MLP)
//!   GCN: substitute kind (tag u8 + payload) | substitute graph | network
//!   MLP: network
//! rectifier: kind u8 | conv u8 | backbone_dims | channels | taps
//!   | per-layer params (count u64, matrices)
//! real graph: num_edges u64 | (u,v) u64 pairs
//! ```
//!
//! where `network` is `input_dim u64 | layers u64 | per layer (in u64,
//! out u64, weight matrix, bias matrix)`, a matrix is `rows u64 | cols
//! u64 | f32-LE data`, and a graph is `num_nodes u64 | num_edges u64 |
//! (u,v) u64 pairs`.
//!
//! A *per-partition* snapshot (magic `GV_SNAP2`, produced by
//! [`Vault::snapshot_partition`](crate::Vault::snapshot_partition))
//! replaces the trailing full real graph with one partition's private
//! state — the owned-node list, the closure's global-id map, the
//! full-graph degree vector, and the induced local COO — while keeping
//! the shared backbone/rectifier weights:
//!
//! ```text
//! magic u64 | epoch u64 | num_global_nodes u64 | part u64 | parts u64
//! epc_budget u64 | cost u64×4 | policy u8 | backbone | rectifier
//! owned (global ids) | local_ids (global ids) | original_degrees
//! local graph
//! ```
//!
//! Restoring it builds a *partial* vault that answers only its owned
//! nodes — bit-identically to the full vault, because the closure spans
//! the rectifier's receptive field and normalization uses the original
//! degrees.
//!
//! An *int8* vault ([`Precision::Int8`](crate::Precision), magics
//! `GV_SNAP3` full / `GV_SNAP4` partition) snapshots with every
//! projection weight replaced by its quantized form — `out_dim u64 |
//! in_dim u64 | i8 codes | f32 per-channel scales` — while biases,
//! attention vectors, and graphs stay f32/exact. Codes and scales are
//! stored *verbatim* (never re-derived on restore), so replicas of an
//! int8 snapshot serve bit-identically to their source and re-snapshot
//! to identical bytes; the f32 network halves are rebuilt from the
//! dequantized weights. The f32 forms (`GV_SNAP1`/`GV_SNAP2`) are
//! byte-for-byte unchanged by the int8 extension.

use crate::backbone::QuantizedBackboneNet;
use crate::vault::QuantizedModel;
use crate::{Backbone, Rectifier, RectifierKind, SubstituteKind, VaultError};
use graph::Graph;
use linalg::{DenseMatrix, QuantizedMatrix};
use nn::{
    ConvKind, GcnNetwork, MlpNetwork, QuantizedConvLayer, QuantizedDenseLayer, QuantizedGatLayer,
    QuantizedGcnLayer, QuantizedGcnNetwork, QuantizedMlpNetwork, QuantizedSageLayer,
};
use tee::{CostModel, OverBudgetPolicy, Sealed};

/// Format marker at offset 0 of every full-vault snapshot payload.
const MAGIC: u64 = 0x4756_5F53_4E41_5031; // "GV_SNAP1"

/// Format marker of the per-partition snapshot form.
const MAGIC_PARTITION: u64 = 0x4756_5F53_4E41_5032; // "GV_SNAP2"

/// Format marker of the int8 full-vault snapshot form.
const MAGIC_INT8: u64 = 0x4756_5F53_4E41_5033; // "GV_SNAP3"

/// Format marker of the int8 per-partition snapshot form.
const MAGIC_INT8_PARTITION: u64 = 0x4756_5F53_4E41_5034; // "GV_SNAP4"

/// Which partition a sealed snapshot carries — clear routing metadata
/// on a [`VaultSnapshot`], mirrored (and cross-checked) inside the
/// sealed payload. Ownership is a pure function of the node id, so
/// exposing `part`/`parts` reveals nothing about the private edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotPartition {
    part: usize,
    parts: usize,
}

impl SnapshotPartition {
    pub(crate) fn new(part: usize, parts: usize) -> Self {
        Self { part, parts }
    }

    /// This snapshot's partition index.
    pub fn part(&self) -> usize {
        self.part
    }

    /// Total number of partitions in the deployment.
    pub fn parts(&self) -> usize {
        self.parts
    }
}

/// A sealed, deployable image of a trained vault.
///
/// Produced by [`Vault::snapshot`](crate::Vault::snapshot); consumed by
/// [`Vault::restore`](crate::Vault::restore). The epoch and corpus size
/// are exposed in the clear (they are serving-layer routing metadata,
/// not secrets — the untrusted world already knows both); everything
/// else, including the private real graph and rectifier weights, lives
/// only inside the sealed payload.
///
/// # Examples
///
/// See [`Vault::snapshot`](crate::Vault::snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct VaultSnapshot {
    epoch: u64,
    num_nodes: usize,
    partition: Option<SnapshotPartition>,
    sealed: Sealed,
}

impl VaultSnapshot {
    /// Deployment epoch of the source vault. Restored replicas keep it,
    /// so caches keyed `(epoch, node)` stay coherent across replicas of
    /// the same snapshot and miss across different models.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of nodes in the snapshotted deployment's real graph (and
    /// therefore the row count the serving corpus must have). For a
    /// per-partition snapshot this is still the *global* node count —
    /// the corpus is shared across partitions.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Which partition this snapshot carries, or `None` for a full
    /// (replica) snapshot.
    pub fn partition(&self) -> Option<SnapshotPartition> {
        self.partition
    }

    /// Size of the sealed payload in bytes.
    pub fn sealed_nbytes(&self) -> usize {
        self.sealed.len()
    }

    /// Wraps an already-sealed payload (crate-internal; use
    /// [`Vault::snapshot`](crate::Vault::snapshot)).
    pub(crate) fn from_parts(epoch: u64, num_nodes: usize, sealed: Sealed) -> Self {
        Self {
            epoch,
            num_nodes,
            partition: None,
            sealed,
        }
    }

    /// Wraps a sealed per-partition payload (crate-internal; use
    /// [`Vault::snapshot_partition`](crate::Vault::snapshot_partition)).
    pub(crate) fn from_partition_parts(
        epoch: u64,
        num_nodes: usize,
        partition: SnapshotPartition,
        sealed: Sealed,
    ) -> Self {
        Self {
            epoch,
            num_nodes,
            partition: Some(partition),
            sealed,
        }
    }

    /// The sealed payload (crate-internal; `Vault::restore` unseals it).
    pub(crate) fn sealed(&self) -> &Sealed {
        &self.sealed
    }
}

/// Everything [`Vault::restore`](crate::Vault::restore) needs to rebuild
/// a deployment from a decoded payload. For a partition payload,
/// `real_graph` is the induced *local* graph and `partition` carries the
/// ownership maps; for a full payload `partition` is `None` and
/// `num_global_nodes == real_graph.num_nodes()`.
pub(crate) struct DecodedVault {
    pub epoch: u64,
    pub num_global_nodes: usize,
    pub epc_budget: usize,
    pub cost: CostModel,
    pub policy: OverBudgetPolicy,
    pub backbone: Backbone,
    pub rectifier: Rectifier,
    /// `Some` for an int8 payload: the verbatim-restored quantized
    /// weights. The f32 `backbone`/`rectifier` then hold dequantized
    /// weights and exist for wiring, shapes, and precision switches.
    pub quantized: Option<QuantizedModel>,
    pub real_graph: Graph,
    pub partition: Option<DecodedPartition>,
}

/// The ownership maps of a decoded per-partition payload.
pub(crate) struct DecodedPartition {
    pub part: usize,
    pub parts: usize,
    /// Global ids owned by this partition, strictly ascending.
    pub owned: Vec<usize>,
    /// Global ids of the closure (`owned ∪ halo`), strictly ascending;
    /// index in this list is the local id.
    pub local_ids: Vec<usize>,
    /// Full-graph degree per local id.
    pub original_degrees: Vec<usize>,
}

/// Shorthand for decode failures.
fn bad(reason: impl Into<String>) -> VaultError {
    VaultError::Snapshot {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------
// Byte writer / reader
// ---------------------------------------------------------------------

/// Append-only little-endian payload writer.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }

    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_usizes(&mut self, vs: &[usize]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_usize(v);
        }
    }

    fn put_matrix(&mut self, m: &DenseMatrix) {
        self.put_usize(m.rows());
        self.put_usize(m.cols());
        for &v in m.as_slice() {
            self.put_f32(v);
        }
    }

    fn put_qmatrix(&mut self, q: &QuantizedMatrix) {
        self.put_usize(q.out_dim());
        self.put_usize(q.in_dim());
        for &c in q.data() {
            self.put_u8(c as u8);
        }
        for &s in q.scales() {
            self.put_f32(s);
        }
    }

    fn put_graph(&mut self, g: &Graph) {
        self.put_usize(g.num_nodes());
        self.put_usize(g.num_edges());
        for &(u, v) in g.edges() {
            self.put_usize(u);
            self.put_usize(v);
        }
    }
}

/// Bounds-checked little-endian payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], VaultError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| bad("payload truncated"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn finish(&self) -> Result<(), VaultError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }

    fn get_u8(&mut self) -> Result<u8, VaultError> {
        Ok(self.take(1)?[0])
    }

    fn get_u64(&mut self) -> Result<u64, VaultError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn get_usize(&mut self) -> Result<usize, VaultError> {
        usize::try_from(self.get_u64()?).map_err(|_| bad("length overflows usize"))
    }

    fn get_f32(&mut self) -> Result<f32, VaultError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn get_f64(&mut self) -> Result<f64, VaultError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn get_usizes(&mut self) -> Result<Vec<usize>, VaultError> {
        let len = self.get_usize()?;
        // Cheap sanity bound: each element needs 8 payload bytes.
        if len > self.buf.len() / 8 + 1 {
            return Err(bad(format!("implausible list length {len}")));
        }
        (0..len).map(|_| self.get_usize()).collect()
    }

    fn get_matrix(&mut self) -> Result<DenseMatrix, VaultError> {
        let rows = self.get_usize()?;
        let cols = self.get_usize()?;
        let n = rows
            .checked_mul(cols)
            .filter(|&n| n <= self.buf.len() / 4 + 1)
            .ok_or_else(|| bad("implausible matrix dimensions"))?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.get_f32()?);
        }
        DenseMatrix::from_vec(rows, cols, data).map_err(|e| bad(e.to_string()))
    }

    fn get_qmatrix(&mut self) -> Result<QuantizedMatrix, VaultError> {
        let out_dim = self.get_usize()?;
        let in_dim = self.get_usize()?;
        if out_dim > self.buf.len() / 4 + 1 {
            return Err(bad(format!("implausible channel count {out_dim}")));
        }
        let n = out_dim
            .checked_mul(in_dim)
            .filter(|&n| n <= self.buf.len())
            .ok_or_else(|| bad("implausible quantized matrix dimensions"))?;
        let data: Vec<i8> = self.take(n)?.iter().map(|&b| b as i8).collect();
        let mut scales = Vec::with_capacity(out_dim);
        for _ in 0..out_dim {
            scales.push(self.get_f32()?);
        }
        QuantizedMatrix::from_parts(out_dim, in_dim, data, scales).map_err(|e| bad(e.to_string()))
    }

    fn get_graph(&mut self) -> Result<Graph, VaultError> {
        let num_nodes = self.get_usize()?;
        let num_edges = self.get_usize()?;
        if num_edges > self.buf.len() / 16 + 1 {
            return Err(bad(format!("implausible edge count {num_edges}")));
        }
        let mut pairs = Vec::with_capacity(num_edges);
        for _ in 0..num_edges {
            pairs.push((self.get_usize()?, self.get_usize()?));
        }
        Graph::from_edges(num_nodes, &pairs).map_err(|e| bad(e.to_string()))
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Encodes a deployment into the deterministic snapshot payload
/// (pre-sealing). With `quantized`, emits the int8 form (`GV_SNAP3`):
/// projection weights as stored codes + scales, everything else f32.
#[allow(clippy::too_many_arguments)] // flat encoder signature mirrors the payload layout
pub(crate) fn encode(
    epoch: u64,
    epc_budget: usize,
    cost: &CostModel,
    policy: OverBudgetPolicy,
    backbone: &Backbone,
    rectifier: &Rectifier,
    quantized: Option<&QuantizedModel>,
    real_graph: &Graph,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(if quantized.is_some() {
        MAGIC_INT8
    } else {
        MAGIC
    });
    w.put_u64(epoch);
    w.put_usize(real_graph.num_nodes());
    encode_config(&mut w, epc_budget, cost, policy);
    encode_backbone(&mut w, backbone, quantized.map(|q| &q.backbone));
    encode_rectifier(&mut w, rectifier, quantized.map(|q| q.rectifier.as_slice()));

    w.put_usize(real_graph.num_edges());
    for &(u, v) in real_graph.edges() {
        w.put_usize(u);
        w.put_usize(v);
    }
    w.buf
}

/// Borrowed view of one partition's private state, handed to
/// [`encode_partition`] by `Vault::snapshot_partition`.
pub(crate) struct PartitionParts<'a> {
    pub part: usize,
    pub parts: usize,
    pub num_global_nodes: usize,
    pub owned: &'a [usize],
    pub local_ids: &'a [usize],
    pub original_degrees: &'a [usize],
    pub local_graph: &'a Graph,
}

/// Encodes one partition of a deployment into the `GV_SNAP2` payload
/// (pre-sealing): shared weights plus only this partition's private
/// graph state.
#[allow(clippy::too_many_arguments)] // flat encoder signature mirrors the payload layout
pub(crate) fn encode_partition(
    epoch: u64,
    epc_budget: usize,
    cost: &CostModel,
    policy: OverBudgetPolicy,
    backbone: &Backbone,
    rectifier: &Rectifier,
    quantized: Option<&QuantizedModel>,
    p: &PartitionParts<'_>,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(if quantized.is_some() {
        MAGIC_INT8_PARTITION
    } else {
        MAGIC_PARTITION
    });
    w.put_u64(epoch);
    w.put_usize(p.num_global_nodes);
    w.put_usize(p.part);
    w.put_usize(p.parts);
    encode_config(&mut w, epc_budget, cost, policy);
    encode_backbone(&mut w, backbone, quantized.map(|q| &q.backbone));
    encode_rectifier(&mut w, rectifier, quantized.map(|q| q.rectifier.as_slice()));
    w.put_usizes(p.owned);
    w.put_usizes(p.local_ids);
    w.put_usizes(p.original_degrees);
    w.put_graph(p.local_graph);
    w.buf
}

fn encode_config(w: &mut Writer, epc_budget: usize, cost: &CostModel, policy: OverBudgetPolicy) {
    w.put_usize(epc_budget);
    w.put_u64(cost.transition_ns);
    w.put_u64(cost.per_byte_ns);
    w.put_u64(cost.page_swap_ns);
    w.put_u64(cost.compute_slowdown_pct as u64);
    w.put_u8(match policy {
        OverBudgetPolicy::Swap => 0,
        OverBudgetPolicy::Fail => 1,
    });
}

fn encode_backbone(w: &mut Writer, backbone: &Backbone, quantized: Option<&QuantizedBackboneNet>) {
    match backbone {
        Backbone::Gcn {
            network,
            substitute_graph,
            kind,
            ..
        } => {
            w.put_u8(0);
            encode_substitute_kind(w, kind);
            w.put_graph(substitute_graph);
            let qlayers = quantized.map(|q| match q {
                QuantizedBackboneNet::Gcn(q) => q.layers(),
                QuantizedBackboneNet::Mlp(_) => {
                    unreachable!("quantized mirror is built from this backbone")
                }
            });
            w.put_usize(network.input_dim());
            w.put_usize(network.num_layers());
            for (i, layer) in network.layers().iter().enumerate() {
                w.put_usize(layer.in_dim());
                w.put_usize(layer.out_dim());
                match qlayers {
                    Some(qs) => w.put_qmatrix(qs[i].weight()),
                    None => w.put_matrix(&layer.weight().value),
                }
                w.put_matrix(&layer.bias().value);
            }
        }
        Backbone::Mlp { network } => {
            w.put_u8(1);
            let qlayers = quantized.map(|q| match q {
                QuantizedBackboneNet::Mlp(q) => q.layers(),
                QuantizedBackboneNet::Gcn(_) => {
                    unreachable!("quantized mirror is built from this backbone")
                }
            });
            w.put_usize(network.input_dim());
            w.put_usize(network.num_layers());
            for (i, layer) in network.layers().iter().enumerate() {
                w.put_usize(layer.in_dim());
                w.put_usize(layer.out_dim());
                match qlayers {
                    Some(qs) => w.put_qmatrix(qs[i].weight()),
                    None => w.put_matrix(&layer.weight().value),
                }
                w.put_matrix(&layer.bias().value);
            }
        }
    }
}

fn encode_rectifier(
    w: &mut Writer,
    rectifier: &Rectifier,
    quantized: Option<&[QuantizedConvLayer]>,
) {
    w.put_u8(match rectifier.kind() {
        RectifierKind::Parallel => 0,
        RectifierKind::Cascaded => 1,
        RectifierKind::Series => 2,
    });
    w.put_u8(match rectifier.layers()[0].kind() {
        ConvKind::Gcn => 0,
        ConvKind::Sage => 1,
        ConvKind::Gat => 2,
    });
    w.put_usizes(rectifier.backbone_dims());
    w.put_usizes(&rectifier.channel_dims());
    w.put_usizes(&rectifier.tap_indices());
    for (i, layer) in rectifier.layers().iter().enumerate() {
        let params = layer.params();
        w.put_usize(params.len());
        match quantized {
            // Param 0 is the projection weight for every conv kind;
            // the rest (bias, attention vectors) stay f32.
            Some(qs) => {
                w.put_qmatrix(qs[i].weight());
                for p in &params[1..] {
                    w.put_matrix(&p.value);
                }
            }
            None => {
                for p in params {
                    w.put_matrix(&p.value);
                }
            }
        }
    }
}

fn encode_substitute_kind(w: &mut Writer, kind: &SubstituteKind) {
    match *kind {
        SubstituteKind::Dnn => w.put_u8(0),
        SubstituteKind::Knn { k } => {
            w.put_u8(1);
            w.put_usize(k);
        }
        SubstituteKind::CosineThreshold { tau } => {
            w.put_u8(2);
            w.put_f32(tau);
        }
        SubstituteKind::CosineBudget => w.put_u8(3),
        SubstituteKind::Random { ratio } => {
            w.put_u8(4);
            w.put_f64(ratio);
        }
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Decodes a snapshot payload back into deployment parts, validating
/// every shape against the reconstructed architecture. Dispatches on
/// the magic: `GV_SNAP1`/`GV_SNAP3` (full vault, f32/int8) or
/// `GV_SNAP2`/`GV_SNAP4` (one partition, f32/int8).
pub(crate) fn decode(payload: &[u8]) -> Result<DecodedVault, VaultError> {
    let mut r = Reader::new(payload);
    match r.get_u64()? {
        MAGIC => decode_full(r, false),
        MAGIC_INT8 => decode_full(r, true),
        MAGIC_PARTITION => decode_partition(r, false),
        MAGIC_INT8_PARTITION => decode_partition(r, true),
        _ => Err(bad("bad magic: not a vault snapshot")),
    }
}

/// Pairs a decoded f32 backbone/rectifier with their quantized halves
/// when the payload was int8.
fn assemble_quantized(
    qnet: Option<QuantizedBackboneNet>,
    qlayers: Option<Vec<QuantizedConvLayer>>,
) -> Option<QuantizedModel> {
    match (qnet, qlayers) {
        (Some(backbone), Some(rectifier)) => Some(QuantizedModel {
            backbone,
            rectifier,
        }),
        _ => None,
    }
}

fn decode_full(mut r: Reader<'_>, int8: bool) -> Result<DecodedVault, VaultError> {
    let epoch = r.get_u64()?;
    let num_nodes = r.get_usize()?;
    let (epc_budget, cost, policy) = decode_config(&mut r)?;
    let (backbone, qnet) = decode_backbone(&mut r, int8)?;
    let (rectifier, qlayers) = decode_rectifier(&mut r, &backbone, int8)?;

    let num_edges = r.get_usize()?;
    if num_edges > r.buf.len() / 16 + 1 {
        return Err(bad(format!("implausible edge count {num_edges}")));
    }
    let mut pairs = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        pairs.push((r.get_usize()?, r.get_usize()?));
    }
    let real_graph = Graph::from_edges(num_nodes, &pairs).map_err(|e| bad(e.to_string()))?;
    r.finish()?;

    Ok(DecodedVault {
        epoch,
        num_global_nodes: num_nodes,
        epc_budget,
        cost,
        policy,
        backbone,
        rectifier,
        quantized: assemble_quantized(qnet, qlayers),
        real_graph,
        partition: None,
    })
}

fn decode_partition(mut r: Reader<'_>, int8: bool) -> Result<DecodedVault, VaultError> {
    let epoch = r.get_u64()?;
    let num_global_nodes = r.get_usize()?;
    let part = r.get_usize()?;
    let parts = r.get_usize()?;
    if part >= parts {
        return Err(bad(format!("partition index {part} out of {parts}")));
    }
    let (epc_budget, cost, policy) = decode_config(&mut r)?;
    let (backbone, qnet) = decode_backbone(&mut r, int8)?;
    let (rectifier, qlayers) = decode_rectifier(&mut r, &backbone, int8)?;
    let owned = r.get_usizes()?;
    let local_ids = r.get_usizes()?;
    let original_degrees = r.get_usizes()?;
    let local_graph = r.get_graph()?;
    r.finish()?;

    check_ascending_ids(&owned, num_global_nodes, "owned list")?;
    check_ascending_ids(&local_ids, num_global_nodes, "closure list")?;
    if owned.iter().any(|n| local_ids.binary_search(n).is_err()) {
        return Err(bad("owned node missing from the partition closure"));
    }
    if original_degrees.len() != local_ids.len() {
        return Err(bad(format!(
            "degree vector has {} entries for a {}-node closure",
            original_degrees.len(),
            local_ids.len()
        )));
    }
    if local_graph.num_nodes() != local_ids.len() {
        return Err(bad(format!(
            "local graph spans {} nodes but the closure lists {}",
            local_graph.num_nodes(),
            local_ids.len()
        )));
    }
    let local_degrees = local_graph.degrees();
    if local_degrees
        .iter()
        .zip(&original_degrees)
        .any(|(&local, &full)| local > full)
    {
        return Err(bad("local degree exceeds the recorded full-graph degree"));
    }

    Ok(DecodedVault {
        epoch,
        num_global_nodes,
        epc_budget,
        cost,
        policy,
        backbone,
        rectifier,
        quantized: assemble_quantized(qnet, qlayers),
        real_graph: local_graph,
        partition: Some(DecodedPartition {
            part,
            parts,
            owned,
            local_ids,
            original_degrees,
        }),
    })
}

/// Rejects id lists that are not strictly ascending within bounds — the
/// invariant every ownership/closure lookup (binary search) relies on.
fn check_ascending_ids(ids: &[usize], bound: usize, what: &str) -> Result<(), VaultError> {
    if ids.iter().any(|&n| n >= bound) {
        return Err(bad(format!("{what} references a node beyond {bound}")));
    }
    if ids.windows(2).any(|w| w[0] >= w[1]) {
        return Err(bad(format!("{what} is not strictly ascending")));
    }
    Ok(())
}

fn decode_config(r: &mut Reader<'_>) -> Result<(usize, CostModel, OverBudgetPolicy), VaultError> {
    let epc_budget = r.get_usize()?;
    let cost = CostModel {
        transition_ns: r.get_u64()?,
        per_byte_ns: r.get_u64()?,
        page_swap_ns: r.get_u64()?,
        compute_slowdown_pct: u32::try_from(r.get_u64()?)
            .map_err(|_| bad("compute slowdown overflows u32"))?,
    };
    let policy = match r.get_u8()? {
        0 => OverBudgetPolicy::Swap,
        1 => OverBudgetPolicy::Fail,
        t => return Err(bad(format!("unknown over-budget policy tag {t}"))),
    };
    Ok((epc_budget, cost, policy))
}

fn decode_backbone(
    r: &mut Reader<'_>,
    int8: bool,
) -> Result<(Backbone, Option<QuantizedBackboneNet>), VaultError> {
    Ok(match r.get_u8()? {
        0 => {
            let kind = decode_substitute_kind(r)?;
            let substitute_graph = r.get_graph()?;
            let (input_dim, channels, weights, qweights) = decode_network_params(r, int8)?;
            let mut network = GcnNetwork::new(input_dim, &channels, 0)?;
            for (layer, (weight, bias)) in network.layers_mut().iter_mut().zip(weights) {
                restore_value(layer.weight_mut(), weight, "backbone weight")?;
                restore_value(layer.bias_mut(), bias, "backbone bias")?;
            }
            let qnet = match qweights {
                Some(qs) => {
                    let qlayers = qs
                        .into_iter()
                        .zip(network.layers())
                        .map(|(qw, layer)| {
                            QuantizedGcnLayer::from_parts(qw, layer.bias().value.clone())
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    Some(QuantizedBackboneNet::Gcn(QuantizedGcnNetwork::from_layers(
                        input_dim, qlayers,
                    )?))
                }
                None => None,
            };
            let substitute_adj = graph::normalization::gcn_normalize(&substitute_graph);
            (
                Backbone::Gcn {
                    network,
                    substitute_graph,
                    substitute_adj,
                    kind,
                },
                qnet,
            )
        }
        1 => {
            let (input_dim, channels, weights, qweights) = decode_network_params(r, int8)?;
            let mut network = MlpNetwork::new(input_dim, &channels, 0)?;
            for (layer, (weight, bias)) in network.layers_mut().iter_mut().zip(weights) {
                restore_value(layer.weight_mut(), weight, "backbone weight")?;
                restore_value(layer.bias_mut(), bias, "backbone bias")?;
            }
            let qnet = match qweights {
                Some(qs) => {
                    let qlayers = qs
                        .into_iter()
                        .zip(network.layers())
                        .map(|(qw, layer)| {
                            QuantizedDenseLayer::from_parts(qw, layer.bias().value.clone())
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    Some(QuantizedBackboneNet::Mlp(QuantizedMlpNetwork::from_layers(
                        input_dim, qlayers,
                    )?))
                }
                None => None,
            };
            (Backbone::Mlp { network }, qnet)
        }
        t => return Err(bad(format!("unknown backbone tag {t}"))),
    })
}

fn decode_rectifier(
    r: &mut Reader<'_>,
    backbone: &Backbone,
    int8: bool,
) -> Result<(Rectifier, Option<Vec<QuantizedConvLayer>>), VaultError> {
    let kind = match r.get_u8()? {
        0 => RectifierKind::Parallel,
        1 => RectifierKind::Cascaded,
        2 => RectifierKind::Series,
        t => return Err(bad(format!("unknown rectifier kind tag {t}"))),
    };
    let conv = match r.get_u8()? {
        0 => ConvKind::Gcn,
        1 => ConvKind::Sage,
        2 => ConvKind::Gat,
        t => return Err(bad(format!("unknown convolution tag {t}"))),
    };
    let backbone_dims = r.get_usizes()?;
    if backbone_dims != backbone.channel_dims() {
        return Err(bad(
            "rectifier wiring disagrees with the decoded backbone's layer widths",
        ));
    }
    let channels = r.get_usizes()?;
    let taps = r.get_usizes()?;
    let mut rectifier = Rectifier::new_with_conv(kind, conv, &channels, &backbone_dims, 0)?;
    if rectifier.tap_indices() != taps {
        return Err(bad(
            "encoded tap-set disagrees with the reconstructed wiring",
        ));
    }
    let mut qlayers = int8.then(Vec::new);
    for layer in rectifier.layers_mut() {
        let count = r.get_usize()?;
        let mut params = layer.params_mut();
        if count != params.len() {
            return Err(bad(format!(
                "rectifier layer has {} parameters, payload carries {count}",
                params.len()
            )));
        }
        match &mut qlayers {
            None => {
                for p in params.iter_mut() {
                    let value = r.get_matrix()?;
                    restore_value(p, value, "rectifier parameter")?;
                }
            }
            Some(qs) => {
                // Param 0 is the quantized projection weight; the f32
                // layer gets its dequantized form, the quantized layer
                // the verbatim codes. The remaining f32 params (bias,
                // attention vectors) are shared by both.
                let mut qweight = None;
                let mut rest = Vec::with_capacity(count.saturating_sub(1));
                for (i, p) in params.iter_mut().enumerate() {
                    if i == 0 {
                        let qw = r.get_qmatrix()?;
                        restore_value(p, qw.dequantize(), "rectifier weight")?;
                        qweight = Some(qw);
                    } else {
                        let value = r.get_matrix()?;
                        restore_value(p, value.clone(), "rectifier parameter")?;
                        rest.push(value);
                    }
                }
                let qw = qweight.ok_or_else(|| bad("rectifier layer has no parameters"))?;
                // `count == params.len()` already pinned `rest` to the
                // architecture's parameter list for this conv kind.
                let q = match conv {
                    ConvKind::Gcn => {
                        QuantizedConvLayer::Gcn(QuantizedGcnLayer::from_parts(qw, rest.remove(0))?)
                    }
                    ConvKind::Sage => QuantizedConvLayer::Sage(QuantizedSageLayer::from_parts(
                        qw,
                        rest.remove(0),
                    )?),
                    ConvKind::Gat => {
                        let bias = rest.pop().ok_or_else(|| bad("gat layer missing bias"))?;
                        let attn_dst = rest.pop().ok_or_else(|| bad("gat layer missing attn"))?;
                        let attn_src = rest.pop().ok_or_else(|| bad("gat layer missing attn"))?;
                        QuantizedConvLayer::Gat(QuantizedGatLayer::from_parts(
                            qw, attn_src, attn_dst, bias,
                        )?)
                    }
                };
                qs.push(q);
            }
        }
    }
    Ok((rectifier, qlayers))
}

fn decode_substitute_kind(r: &mut Reader<'_>) -> Result<SubstituteKind, VaultError> {
    Ok(match r.get_u8()? {
        0 => SubstituteKind::Dnn,
        1 => SubstituteKind::Knn { k: r.get_usize()? },
        2 => SubstituteKind::CosineThreshold { tau: r.get_f32()? },
        3 => SubstituteKind::CosineBudget,
        4 => SubstituteKind::Random {
            ratio: r.get_f64()?,
        },
        t => return Err(bad(format!("unknown substitute kind tag {t}"))),
    })
}

/// Decodes one network's `input_dim`, per-layer output widths, and
/// per-layer `(weight, bias)` value matrices. For an int8 payload the
/// weight slot holds a quantized matrix: the returned f32 weight is its
/// dequantized form and the verbatim codes come back in the fourth
/// element.
#[allow(clippy::type_complexity)]
fn decode_network_params(
    r: &mut Reader<'_>,
    int8: bool,
) -> Result<
    (
        usize,
        Vec<usize>,
        Vec<(DenseMatrix, DenseMatrix)>,
        Option<Vec<QuantizedMatrix>>,
    ),
    VaultError,
> {
    let input_dim = r.get_usize()?;
    let num_layers = r.get_usize()?;
    if num_layers > r.buf.len() / 8 + 1 {
        return Err(bad(format!("implausible layer count {num_layers}")));
    }
    let mut channels = Vec::with_capacity(num_layers);
    let mut weights = Vec::with_capacity(num_layers);
    let mut qweights = int8.then(Vec::new);
    let mut prev = input_dim;
    for _ in 0..num_layers {
        let in_dim = r.get_usize()?;
        let out_dim = r.get_usize()?;
        if in_dim != prev {
            return Err(bad(format!(
                "layer input width {in_dim} does not chain from previous width {prev}"
            )));
        }
        channels.push(out_dim);
        let weight = match &mut qweights {
            Some(qs) => {
                let qw = r.get_qmatrix()?;
                let weight = qw.dequantize();
                qs.push(qw);
                weight
            }
            None => r.get_matrix()?,
        };
        weights.push((weight, r.get_matrix()?));
        prev = out_dim;
    }
    Ok((input_dim, channels, weights, qweights))
}

/// Overwrites a freshly initialized parameter's value with a decoded
/// matrix, rejecting shape mismatches (gradient and optimizer moments
/// stay zeroed — they are training state, not deployment state).
fn restore_value(param: &mut nn::Param, value: DenseMatrix, what: &str) -> Result<(), VaultError> {
    if param.value.shape() != value.shape() {
        return Err(bad(format!(
            "{what} shape {:?} does not match architecture shape {:?}",
            value.shape(),
            param.value.shape()
        )));
    }
    param.value = value;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vault;
    use nn::TrainConfig;
    use proptest::prelude::*;
    use tee::{SealKey, TeeError};

    /// Deterministic pseudo-random feature matrix.
    fn features(n: usize, dim: usize, seed: u64) -> DenseMatrix {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        DenseMatrix::from_fn(n, dim, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f32 / 500.0 - 1.0
        })
    }

    /// Deterministic pseudo-random graph over `n` nodes: every pair is
    /// an edge when its hash clears `density` per mille.
    fn random_graph(n: usize, density: u64, seed: u64) -> Graph {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let mut h = seed ^ ((u as u64) << 32) ^ v as u64;
                h ^= h << 13;
                h ^= h >> 7;
                h ^= h << 17;
                if h % 1000 < density {
                    edges.push((u, v));
                }
            }
        }
        Graph::from_edges(n, &edges).unwrap()
    }

    /// Trains and deploys a small vault for round-trip testing.
    fn trained_vault(
        n: usize,
        kind: RectifierKind,
        conv: ConvKind,
        substitute: SubstituteKind,
        graph: &Graph,
        seed: u64,
        key: SealKey,
    ) -> (Vault, DenseMatrix) {
        let x = features(n, 3, seed);
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let train: Vec<usize> = (0..n).collect();
        let cfg = TrainConfig {
            epochs: 4,
            lr: 0.05,
            weight_decay: 0.0,
            dropout: 0.0,
            seed,
        };
        let backbone = crate::Backbone::train(
            &x,
            &labels,
            &train,
            substitute,
            &[4, 2],
            graph.num_edges(),
            &cfg,
            seed,
        )
        .unwrap();
        let mut rectifier =
            Rectifier::new_with_conv(kind, conv, &[4, 2], &backbone.channel_dims(), seed).unwrap();
        let real_adj = graph::normalization::gcn_normalize(graph);
        let embs = backbone.embeddings(&x).unwrap();
        rectifier
            .fit(&real_adj, &embs, &labels, &train, &cfg)
            .unwrap();
        let vault = Vault::deploy(
            backbone,
            rectifier,
            graph,
            tee::SGX_EPC_BYTES,
            tee::CostModel::default(),
            tee::OverBudgetPolicy::Fail,
            key,
        )
        .unwrap();
        (vault, x)
    }

    /// Round-trips a vault through snapshot/restore and asserts
    /// bit-identical labels and transition counts on both the
    /// full-graph and the batched inference paths.
    fn assert_roundtrip(mut vault: Vault, x: &DenseMatrix, key: SealKey) {
        let snapshot = vault.snapshot();
        assert_eq!(snapshot.epoch(), vault.epoch());
        assert_eq!(snapshot.num_nodes(), vault.num_nodes());
        assert!(snapshot.sealed_nbytes() > 0);
        // Encoding is deterministic: same vault, same sealed payload.
        assert_eq!(vault.snapshot(), snapshot);

        let mut restored = Vault::restore(&snapshot, key).unwrap();
        assert_eq!(restored.epoch(), vault.epoch(), "epoch is preserved");
        assert_eq!(restored.rectifier_kind(), vault.rectifier_kind());
        assert_eq!(
            restored.rectifier_param_count(),
            vault.rectifier_param_count()
        );

        let (labels, report) = vault.infer(x).unwrap();
        let (restored_labels, restored_report) = restored.infer(x).unwrap();
        assert_eq!(restored_labels, labels, "labels must be bit-identical");
        assert_eq!(
            restored_report.transitions, report.transitions,
            "transition counts must match"
        );
        assert_eq!(restored_report.transferred_bytes, report.transferred_bytes);

        let nodes: Vec<usize> = (0..x.rows()).collect();
        if !nodes.is_empty() {
            let mut s0 = vault.open_session();
            let mut s1 = restored.open_session();
            let (batch_a, rep_a) = vault.infer_batch(&mut s0, x, &nodes).unwrap();
            let (batch_b, rep_b) = restored.infer_batch(&mut s1, x, &nodes).unwrap();
            assert_eq!(batch_a, batch_b, "batched labels must be bit-identical");
            assert_eq!(rep_a.transitions, rep_b.transitions);
        }

        // Wrong key: sealing rejects, nothing leaks.
        assert!(matches!(
            Vault::restore(&snapshot, SealKey(key.0 ^ 1)),
            Err(VaultError::Tee(TeeError::SealTampered))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn snapshot_roundtrip_is_bit_identical(
            n in 2usize..8,
            kind_idx in 0usize..3,
            density in 100u64..900,
            seed in 0u64..1000,
        ) {
            let kind = RectifierKind::ALL[kind_idx];
            let graph = random_graph(n, density, seed);
            let key = SealKey(seed as u128 + 11);
            let (vault, x) = trained_vault(
                n, kind, ConvKind::Gcn, SubstituteKind::Knn { k: 1 }, &graph, seed, key,
            );
            assert_roundtrip(vault, &x, key);
        }
    }

    #[test]
    fn snapshot_roundtrip_edge_cases() {
        // Single-node graph with no edges (MLP backbone: a 1-node KNN
        // graph has no neighbours to connect).
        let single = Graph::from_edges(1, &[]).unwrap();
        let key = SealKey(5);
        let (vault, x) = trained_vault(
            1,
            RectifierKind::Series,
            ConvKind::Gcn,
            SubstituteKind::Dnn,
            &single,
            3,
            key,
        );
        assert_roundtrip(vault, &x, key);

        // Edge-free ("empty") graph with several nodes, empty random
        // substitute — exercises zero-edge encode/decode on both the
        // substitute and the real graph.
        let empty = Graph::from_edges(4, &[]).unwrap();
        let (vault, x) = trained_vault(
            4,
            RectifierKind::Cascaded,
            ConvKind::Gcn,
            SubstituteKind::Random { ratio: 0.0 },
            &empty,
            4,
            key,
        );
        assert_roundtrip(vault, &x, key);
    }

    #[test]
    fn snapshot_roundtrips_sage_and_gat_rectifiers() {
        for conv in [ConvKind::Sage, ConvKind::Gat] {
            let graph = random_graph(6, 500, 7);
            let key = SealKey(21);
            let (vault, x) = trained_vault(
                6,
                RectifierKind::Series,
                conv,
                SubstituteKind::Knn { k: 2 },
                &graph,
                9,
                key,
            );
            assert_roundtrip(vault, &x, key);
        }
    }

    #[test]
    fn corrupted_payload_and_garbage_are_rejected() {
        let graph = random_graph(5, 600, 1);
        let key = SealKey(77);
        let (vault, _) = trained_vault(
            5,
            RectifierKind::Parallel,
            ConvKind::Gcn,
            SubstituteKind::Knn { k: 1 },
            &graph,
            2,
            key,
        );
        let snapshot = vault.snapshot();

        // Metadata that disagrees with the sealed payload is caught.
        let forged = VaultSnapshot::from_parts(
            snapshot.epoch() + 1,
            snapshot.num_nodes(),
            snapshot.sealed().clone(),
        );
        assert!(matches!(
            Vault::restore(&forged, key),
            Err(VaultError::Snapshot { .. })
        ));

        // A sealed blob that is not a snapshot payload fails to decode
        // (bad magic), not panic.
        let garbage = VaultSnapshot::from_parts(
            snapshot.epoch(),
            snapshot.num_nodes(),
            Sealed::seal(key.derive("vault-snapshot"), &[1, 2, 3, 4, 5, 6, 7, 8, 9]),
        );
        assert!(matches!(
            Vault::restore(&garbage, key),
            Err(VaultError::Snapshot { .. })
        ));
    }

    #[test]
    fn decode_rejects_truncation_at_every_prefix() {
        let graph = random_graph(4, 500, 3);
        let key = SealKey(13);
        let (vault, _) = trained_vault(
            4,
            RectifierKind::Series,
            ConvKind::Gcn,
            SubstituteKind::Knn { k: 1 },
            &graph,
            6,
            key,
        );
        let payload = encode(
            vault.epoch(),
            tee::SGX_EPC_BYTES,
            &tee::CostModel::default(),
            OverBudgetPolicy::Fail,
            vault.backbone(),
            // Round-trip decode to regain rectifier/graph access.
            &decode(&payload_of(&vault)).unwrap().rectifier,
            None,
            &decode(&payload_of(&vault)).unwrap().real_graph,
        );
        assert!(decode(&payload).is_ok());
        // Any strict prefix must fail cleanly.
        for len in (0..payload.len()).step_by(41) {
            assert!(
                decode(&payload[..len]).is_err(),
                "prefix of {len} bytes must not decode"
            );
        }
    }

    /// Unsealed payload of a vault's own snapshot (test helper).
    fn payload_of(vault: &Vault) -> Vec<u8> {
        vault
            .snapshot()
            .sealed()
            .unseal(SealKey(13).derive("vault-snapshot"))
            .unwrap()
            .to_vec()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn partition_snapshot_roundtrip_answers_owned_nodes_bit_identically(
            n in 4usize..10,
            kind_idx in 0usize..3,
            density in 100u64..700,
            seed in 0u64..1000,
            nparts in 2usize..5,
        ) {
            use graph::partition::PartitionSpec;
            let kind = RectifierKind::ALL[kind_idx];
            let graph = random_graph(n, density, seed);
            let key = SealKey(seed as u128 + 29);
            let (mut vault, x) = trained_vault(
                n, kind, ConvKind::Gcn, SubstituteKind::Knn { k: 1 }, &graph, seed, key,
            );
            let (full_labels, _) = vault.infer(&x).unwrap();
            let spec = PartitionSpec::block(n, nparts).unwrap();
            let snaps = vault.partition_snapshots(&spec).unwrap();
            prop_assert_eq!(snaps.len(), nparts);
            for (part, snap) in snaps.iter().enumerate() {
                prop_assert_eq!(snap.epoch(), vault.epoch());
                prop_assert_eq!(snap.num_nodes(), n, "partition snapshots report the global count");
                let stamp = snap.partition().expect("partition snapshots carry their stamp");
                prop_assert_eq!(stamp.part(), part);
                prop_assert_eq!(stamp.parts(), nparts);
                // The single-partition path seals the identical bytes.
                prop_assert_eq!(&vault.snapshot_partition(&spec, part).unwrap(), snap);

                let mut partial = Vault::restore(snap, key).unwrap();
                prop_assert_eq!(partial.epoch(), vault.epoch());
                prop_assert_eq!(partial.num_nodes(), n);
                prop_assert_eq!(partial.partition_info(), Some((part, nparts)));
                let owned: Vec<usize> =
                    partial.owned_nodes().expect("partial vault").to_vec();
                prop_assert!(owned.iter().all(|&o| spec.owner_of(o) == part));

                // Owned nodes answer bit-identically to the full vault,
                // through both the batched and the per-node path.
                if !owned.is_empty() {
                    let mut session = partial.open_session();
                    let (labels, _) = partial.infer_batch(&mut session, &x, &owned).unwrap();
                    for (label, &o) in labels.iter().zip(&owned) {
                        prop_assert_eq!(*label, full_labels[o]);
                    }
                    let (single, _) = partial.infer_node(&x, owned[0]).unwrap();
                    prop_assert_eq!(single, full_labels[owned[0]]);
                }

                // Non-owned nodes fail with the typed routing error on
                // both paths — never a silently wrong label.
                if let Some(alien) = (0..n).find(|&m| spec.owner_of(m) != part) {
                    let mut session = partial.open_session();
                    prop_assert!(matches!(
                        partial.infer_batch(&mut session, &x, &[alien]),
                        Err(VaultError::NotOwned { node, part: p, parts })
                            if node == alien && p == part && parts == nparts
                    ));
                    prop_assert!(matches!(
                        partial.infer_node(&x, alien),
                        Err(VaultError::NotOwned { .. })
                    ));
                }

                // Full-graph inference is refused outright on a partial
                // vault (no partition holds every node).
                prop_assert!(matches!(
                    partial.infer(&x),
                    Err(VaultError::InvalidConfig { .. })
                ));

                // Wrong key: sealing rejects, nothing leaks.
                prop_assert!(matches!(
                    Vault::restore(snap, SealKey(key.0 ^ 5)),
                    Err(VaultError::Tee(TeeError::SealTampered))
                ));
            }
        }
    }

    #[test]
    fn partition_snapshot_rejects_truncation_and_forged_stamps() {
        use graph::partition::PartitionSpec;
        let graph = random_graph(6, 500, 11);
        let key = SealKey(13);
        let (vault, _) = trained_vault(
            6,
            RectifierKind::Series,
            ConvKind::Gcn,
            SubstituteKind::Knn { k: 1 },
            &graph,
            6,
            key,
        );
        let spec = PartitionSpec::block(6, 2).unwrap();
        let snap = vault.snapshot_partition(&spec, 0).unwrap();
        let stamp = snap.partition().unwrap();

        // Every strict prefix of the partition payload fails cleanly.
        let payload = snap
            .sealed()
            .unseal(key.derive("vault-snapshot"))
            .unwrap()
            .to_vec();
        assert!(decode(&payload).is_ok());
        for len in (0..payload.len()).step_by(37) {
            assert!(
                decode(&payload[..len]).is_err(),
                "prefix of {len} bytes must not decode"
            );
        }

        // Clear-metadata stamp disagreeing with the sealed payload is
        // caught: wrong part index, wrong epoch, and a stamp claiming
        // the payload is a full snapshot (or vice versa).
        let forged_part = VaultSnapshot::from_partition_parts(
            snap.epoch(),
            snap.num_nodes(),
            SnapshotPartition::new(1, stamp.parts()),
            snap.sealed().clone(),
        );
        assert!(matches!(
            Vault::restore(&forged_part, key),
            Err(VaultError::Snapshot { .. })
        ));
        let forged_epoch = VaultSnapshot::from_partition_parts(
            snap.epoch() + 1,
            snap.num_nodes(),
            SnapshotPartition::new(stamp.part(), stamp.parts()),
            snap.sealed().clone(),
        );
        assert!(matches!(
            Vault::restore(&forged_epoch, key),
            Err(VaultError::Snapshot { .. })
        ));
        let unstamped =
            VaultSnapshot::from_parts(snap.epoch(), snap.num_nodes(), snap.sealed().clone());
        assert!(matches!(
            Vault::restore(&unstamped, key),
            Err(VaultError::Snapshot { .. })
        ));
        let full = vault.snapshot();
        let full_as_partition = VaultSnapshot::from_partition_parts(
            full.epoch(),
            full.num_nodes(),
            SnapshotPartition::new(0, 2),
            full.sealed().clone(),
        );
        assert!(matches!(
            Vault::restore(&full_as_partition, key),
            Err(VaultError::Snapshot { .. })
        ));
    }

    #[test]
    fn int8_partition_snapshots_answer_owned_nodes_bit_identically() {
        use graph::partition::PartitionSpec;
        for conv in [ConvKind::Gcn, ConvKind::Sage, ConvKind::Gat] {
            let graph = random_graph(8, 500, 17);
            let key = SealKey(23);
            let (mut vault, x) = trained_vault(
                8,
                RectifierKind::Series,
                conv,
                SubstituteKind::Knn { k: 2 },
                &graph,
                5,
                key,
            );
            let spec = PartitionSpec::block(8, 2).unwrap();
            let f32_snaps = vault.partition_snapshots(&spec).unwrap();
            vault.set_precision(crate::Precision::Int8).unwrap();
            let (labels, _) = vault.infer(&x).unwrap();
            for (snap, f32_snap) in vault
                .partition_snapshots(&spec)
                .unwrap()
                .iter()
                .zip(&f32_snaps)
            {
                assert!(
                    snap.sealed_nbytes() < f32_snap.sealed_nbytes(),
                    "{conv:?}: an int8 partition seals less than its f32 form"
                );
                let mut partial = Vault::restore(snap, key).unwrap();
                assert_eq!(partial.precision(), crate::Precision::Int8);
                let owned = partial.owned_nodes().unwrap().to_vec();
                if owned.is_empty() {
                    continue;
                }
                let mut session = partial.open_session();
                let (plabels, _) = partial.infer_batch(&mut session, &x, &owned).unwrap();
                for (label, &o) in plabels.iter().zip(&owned) {
                    assert_eq!(*label, labels[o], "{conv:?}: partition disagrees on {o}");
                }
                let (single, _) = partial.infer_node(&x, owned[0]).unwrap();
                assert_eq!(single, labels[owned[0]], "{conv:?}");
                // The partition re-seals its own image byte-identically.
                assert_eq!(&partial.snapshot(), snap, "{conv:?}");
            }
        }
    }

    #[test]
    fn int8_payload_rejects_truncation_at_every_prefix() {
        let graph = random_graph(5, 500, 9);
        let key = SealKey(41);
        let (mut vault, _) = trained_vault(
            5,
            RectifierKind::Series,
            ConvKind::Gat,
            SubstituteKind::Knn { k: 1 },
            &graph,
            4,
            key,
        );
        vault.set_precision(crate::Precision::Int8).unwrap();
        let payload = vault
            .snapshot()
            .sealed()
            .unseal(key.derive("vault-snapshot"))
            .unwrap()
            .to_vec();
        assert!(decode(&payload).is_ok());
        for len in (0..payload.len()).step_by(31) {
            assert!(
                decode(&payload[..len]).is_err(),
                "prefix of {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn partition_snapshots_beat_full_replicas_on_sparse_graphs() {
        use graph::partition::PartitionSpec;
        // A 96-node ring: block partitions have small halos (the L-hop
        // closure of a contiguous arc grows by 2L nodes, not to the
        // whole graph), so each shard seals a fraction of the edges.
        let n = 96;
        let ring: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let graph = Graph::from_edges(n, &ring).unwrap();
        let key = SealKey(31);
        let (mut vault, x) = trained_vault(
            n,
            RectifierKind::Series,
            ConvKind::Gcn,
            SubstituteKind::Knn { k: 1 },
            &graph,
            8,
            key,
        );
        let (full_labels, _) = vault.infer(&x).unwrap();
        let full = vault.snapshot();
        let spec = PartitionSpec::block(n, 4).unwrap();
        for (part, snap) in vault.partition_snapshots(&spec).unwrap().iter().enumerate() {
            assert!(
                snap.sealed_nbytes() < full.sealed_nbytes(),
                "partition {part} seals {} bytes, full replica {}",
                snap.sealed_nbytes(),
                full.sealed_nbytes()
            );
            // The partial vault's own recovery handle restores the same
            // partial deployment (the serving runtime's crash path).
            let partial = Vault::restore(snap, key).unwrap();
            let mut recovered = partial.recovery_handle().restore().unwrap();
            assert_eq!(recovered.partition_info(), Some((part, 4)));
            let owned = partial.owned_nodes().unwrap().to_vec();
            let mut session = recovered.open_session();
            let (labels, _) = recovered.infer_batch(&mut session, &x, &owned).unwrap();
            for (label, &o) in labels.iter().zip(&owned) {
                assert_eq!(*label, full_labels[o]);
            }
        }
    }
}
