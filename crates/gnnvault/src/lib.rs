//! GNNVault: secure edge deployment of Graph Neural Networks with a
//! Trusted Execution Environment.
//!
//! This crate implements the paper's contribution — the
//! *partition-before-training* deployment strategy of
//! "Graph in the Vault: Protecting Edge GNN Inference with Trusted
//! Execution Environment" (DAC 2025):
//!
//! 1. **Substitute graph** ([`SubstituteKind`]): a public stand-in
//!    adjacency built only from public node features (KNN, cosine
//!    threshold, or random),
//! 2. **Public backbone** ([`Backbone`]): a GCN trained on the
//!    substitute graph (or an MLP that ignores structure), deployed in
//!    the untrusted world,
//! 3. **Private rectifier** ([`Rectifier`]): a small GCN that sees the
//!    *real* adjacency and recalibrates the backbone's embeddings, in
//!    one of three wirings ([`RectifierKind`]: parallel / cascaded /
//!    series, Fig. 3),
//! 4. **Secure deployment** ([`Vault`]): the rectifier and real graph
//!    live in a simulated SGX enclave; data flows one way
//!    (untrusted → enclave) and only class labels come back.
//!
//! [`OriginalGnn`] provides the unprotected reference model (`porg`),
//! and [`pipeline`] drives the whole four-step flow for the experiment
//! harness. Deployed vaults answer single queries ([`Vault::infer`],
//! [`Vault::infer_node`]) or serving-style batches
//! ([`Vault::infer_batch`], one enclave transition set per batch); the
//! `serve` crate stacks admission control, batching, and caching on
//! top.
//!
//! # Examples
//!
//! ```
//! use datasets::{DatasetSpec, SyntheticPlanetoid};
//! use gnnvault::{pipeline, ModelConfig, RectifierKind, SubstituteKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = SyntheticPlanetoid::new(DatasetSpec::CORA)
//!     .scale(0.03)
//!     .seed(5)
//!     .generate()?;
//! let spec = pipeline::PipelineConfig {
//!     model: ModelConfig::m1(data.num_classes),
//!     substitute: SubstituteKind::Knn { k: 2 },
//!     rectifier: RectifierKind::Series,
//!     epochs: 30,
//!     ..Default::default()
//! };
//! let trained = pipeline::train(&data, &spec)?;
//! let eval = pipeline::evaluate(&trained, &data)?;
//! assert!(eval.rectifier_accuracy >= 0.0 && eval.rectifier_accuracy <= 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backbone;
mod error;
mod model;
mod original;
pub mod pipeline;
mod rectifier;
mod snapshot;
mod substitute;
mod vault;

pub use backbone::Backbone;
pub use error::VaultError;
pub use model::ModelConfig;
pub use original::OriginalGnn;
pub use rectifier::{Rectifier, RectifierKind};
pub use snapshot::{SnapshotPartition, VaultSnapshot};
pub use substitute::SubstituteKind;
pub use vault::{InferenceReport, Precision, RecoveryHandle, Vault};
