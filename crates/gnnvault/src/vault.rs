use crate::backbone::QuantizedBackboneNet;
use crate::{snapshot, Backbone, Rectifier, VaultError, VaultSnapshot};
use graph::partition::PartitionSpec;
use graph::{normalization, Graph};
use linalg::DenseMatrix;
use nn::QuantizedConvLayer;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tee::{
    codec, AllocationId, ClassLabel, CostModel, EnclaveSession, EnclaveSim, Meter,
    OverBudgetPolicy, Phase, SealKey, Sealed, SessionId, UntrustedToEnclave,
};

/// Process-wide deployment counter behind [`Vault::epoch`]: every
/// deployment in this process gets a distinct epoch, so in-memory
/// caches keyed by epoch can never mix answers from two deployments.
/// The counter restarts with the process — a cache that outlives the
/// process (disk, remote) must add its own boot-unique component.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Per-inference report: the Fig. 6 measurables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Wall-clock + simulated time per phase.
    pub backbone_ns: u64,
    /// Transfer time (simulated SGX marshalling).
    pub transfer_ns: u64,
    /// Rectifier time inside the enclave (wall + page-swap simulation).
    pub rectifier_ns: u64,
    /// Bytes moved across the boundary.
    pub transferred_bytes: usize,
    /// ECALL count for this inference.
    pub transitions: u64,
    /// Peak enclave memory over the deployment lifetime so far.
    pub peak_enclave_bytes: usize,
}

impl InferenceReport {
    /// Total inference time (all phases).
    pub fn total_ns(&self) -> u64 {
        self.backbone_ns + self.transfer_ns + self.rectifier_ns
    }
}

/// Numeric precision of a vault's serving path
/// ([`Vault::set_precision`]).
///
/// `Int8` swaps every projection GEMM (backbone and rectifier) for a
/// per-output-channel int8 weight kernel with i32 accumulation and an
/// f32 dequantizing epilogue; aggregation, attention, softmax, bias,
/// and ReLU stay f32 and run the identical code. Training always
/// happens at `F32` — int8 is a serving-time transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// Full-precision f32 weights (the precision models train at).
    #[default]
    F32,
    /// Per-channel int8 projection weights, f32 everything else.
    Int8,
}

impl Precision {
    /// Both precisions, for test and bench matrices.
    pub const ALL: [Precision; 2] = [Precision::F32, Precision::Int8];

    /// Stable lowercase name (`"f32"` / `"int8"`) for reports and
    /// bench ids.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

/// The int8 mirror of a deployment's weights: built once by
/// [`Vault::set_precision`] (or decoded from an int8 snapshot) and
/// stored, so repeated inference and re-snapshotting reuse one
/// deterministic quantization instead of re-deriving scales — which
/// keeps replicas of an int8 snapshot bit-identical to their source.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct QuantizedModel {
    /// Quantized backbone network (runs against the f32 backbone's
    /// substitute adjacency).
    pub(crate) backbone: QuantizedBackboneNet,
    /// Quantized rectifier stack, aligned 1:1 with the f32 layers.
    pub(crate) rectifier: Vec<QuantizedConvLayer>,
}

impl QuantizedModel {
    /// Heap bytes of the quantized rectifier parameters — the resident
    /// enclave footprint that replaces the f32 parameter allocation.
    pub(crate) fn rectifier_nbytes(&self) -> usize {
        self.rectifier.iter().map(QuantizedConvLayer::nbytes).sum()
    }
}

/// A deployed GNNVault instance (§IV-E): the public backbone plus
/// substitute graph in the untrusted world, and the rectifier plus the
/// real graph (COO + precomputed degrees) sealed inside a simulated SGX
/// enclave.
///
/// Besides full-graph [`Vault::infer`], the threat model's per-node
/// query ("query the GNN model with any chosen node") is served by
/// [`Vault::infer_node`], which extracts the node's k-hop ego graph
/// *inside the enclave* — the private neighbourhood never leaves — and
/// rectifies only that subgraph.
///
/// [`Vault::infer`] runs the split pipeline: backbone in the normal
/// world, tap embeddings marshalled one-way into the enclave, rectifier
/// inside, and *label-only* output ([`ClassLabel`]) — logits never leave.
///
/// For serving traffic, [`Vault::infer_batch`] answers many node
/// queries with a single enclave transition set per batch through a
/// reusable [`EnclaveSession`]; the `serve` crate builds its admission
/// queue, caching, and scheduling on top of that entry point.
///
/// # Examples
///
/// See [`crate::pipeline`] for end-to-end construction; the integration
/// tests in `tests/` exercise `Vault` directly.
#[derive(Debug)]
pub struct Vault {
    backbone: Backbone,
    epoch: u64,
    next_session: u64,
    epc_budget: usize,
    policy: OverBudgetPolicy,
    /// `Some` on a partition replica: `real_graph` is then the induced
    /// local closure and queries are answerable only for owned nodes.
    partition: Option<VaultPartition>,
    // --- enclave-private state (never exposed by any accessor) ---
    rectifier: Rectifier,
    /// `Some` when serving int8: the quantized weight mirror.
    quantized: Option<QuantizedModel>,
    /// Ledger entry for the resident rectifier parameters, retained so
    /// [`Vault::set_precision`] can re-account it at the new size.
    rectifier_params_alloc: AllocationId,
    real_graph: Graph,
    real_adj: linalg::CsrMatrix,
    enclave: EnclaveSim,
    sealed_artifacts: Vec<(String, Sealed)>,
    seal_key: SealKey,
}

/// Ownership maps of a partition replica. `part`/`parts` are public
/// routing metadata; the closure (`local_ids`, whose tail reveals halo
/// membership and therefore cross-partition adjacency) stays enclave-
/// private like the rest of the graph state.
#[derive(Debug, Clone)]
struct VaultPartition {
    part: usize,
    parts: usize,
    num_global_nodes: usize,
    /// Global ids owned by this partition, strictly ascending.
    owned: Vec<usize>,
    /// Global ids of the closure (`owned ∪ halo`), strictly ascending;
    /// the index in this list is the local id in `real_graph`.
    local_ids: Vec<usize>,
    /// Full-graph degree per local id — the normalization degrees that
    /// make local aggregation bit-identical to the full graph.
    original_degrees: Vec<usize>,
}

impl VaultPartition {
    fn local_id(&self, global: usize) -> Option<usize> {
        self.local_ids.binary_search(&global).ok()
    }

    fn owns(&self, global: usize) -> bool {
        self.owned.binary_search(&global).is_ok()
    }
}

impl Vault {
    /// Deploys a trained backbone/rectifier pair.
    ///
    /// The rectifier parameters and the real graph are sealed (at-rest
    /// protection) and accounted inside the enclave: parameters, the
    /// COO edge list, the precomputed degree vector, and the normalized
    /// adjacency the enclave keeps resident.
    ///
    /// # Errors
    ///
    /// Returns [`VaultError::Tee`] when the enclave rejects the resident
    /// set (only under [`OverBudgetPolicy::Fail`]).
    pub fn deploy(
        backbone: Backbone,
        rectifier: Rectifier,
        real_graph: &Graph,
        epc_budget: usize,
        cost: CostModel,
        policy: OverBudgetPolicy,
        seal_key: SealKey,
    ) -> Result<Vault, VaultError> {
        let epoch = NEXT_EPOCH.fetch_add(1, Ordering::Relaxed);
        Self::deploy_with_epoch(
            backbone, rectifier, real_graph, epc_budget, cost, policy, seal_key, epoch, None, None,
        )
    }

    /// Deployment body shared by [`Vault::deploy`] (fresh epoch) and
    /// [`Vault::restore`] (the snapshot's epoch, so replicas of one
    /// snapshot share a cache identity). With `partition`, `real_graph`
    /// is the partition's induced closure and normalization uses the
    /// recorded full-graph degrees — the resident set (COO, degree
    /// vector, CSR) shrinks to the closure size, which is the memory
    /// win of partitioned sharding.
    #[allow(clippy::too_many_arguments)]
    fn deploy_with_epoch(
        backbone: Backbone,
        rectifier: Rectifier,
        real_graph: &Graph,
        epc_budget: usize,
        cost: CostModel,
        policy: OverBudgetPolicy,
        seal_key: SealKey,
        epoch: u64,
        partition: Option<VaultPartition>,
        quantized: Option<QuantizedModel>,
    ) -> Result<Vault, VaultError> {
        let mut enclave = EnclaveSim::new(epc_budget, cost, policy);

        // Resident enclave set, mirroring §IV-E's storage plan. An int8
        // deployment keeps the quantized parameters resident instead of
        // the f32 form.
        let rectifier_params_alloc = match &quantized {
            Some(q) => enclave.alloc("rectifier parameters (int8)", q.rectifier_nbytes())?,
            None => enclave.alloc("rectifier parameters", rectifier.nbytes())?,
        };
        enclave.alloc("real graph (COO)", real_graph.coo_nbytes())?;
        enclave.alloc(
            "degree vector",
            real_graph.num_nodes() * std::mem::size_of::<u32>(),
        )?;
        let degrees = match &partition {
            Some(p) => p.original_degrees.clone(),
            None => real_graph.degrees(),
        };
        let real_adj = normalization::gcn_normalize_with_degrees(real_graph, &degrees);
        enclave.alloc("normalized adjacency (CSR)", real_adj.nbytes())?;

        // Seal deployment artifacts (simulated SGX sealing).
        let mut sealed_artifacts = Vec::new();
        let mut weight_bytes = Vec::new();
        for dim in rectifier.channel_dims() {
            weight_bytes.extend_from_slice(&dim.to_le_bytes());
        }
        sealed_artifacts.push((
            "rectifier-shape".to_owned(),
            Sealed::seal(seal_key.derive("rectifier-shape"), &weight_bytes),
        ));
        let mut edge_bytes = Vec::with_capacity(real_graph.num_edges() * 8);
        for &(u, v) in real_graph.edges() {
            edge_bytes.extend_from_slice(&(u as u32).to_le_bytes());
            edge_bytes.extend_from_slice(&(v as u32).to_le_bytes());
        }
        sealed_artifacts.push((
            "real-graph-coo".to_owned(),
            Sealed::seal(seal_key.derive("real-graph-coo"), &edge_bytes),
        ));

        Ok(Vault {
            backbone,
            epoch,
            next_session: 0,
            epc_budget,
            policy,
            partition,
            rectifier,
            quantized,
            rectifier_params_alloc,
            real_graph: real_graph.clone(),
            real_adj,
            enclave,
            sealed_artifacts,
            seal_key,
        })
    }

    /// Serializes this deployment into a sealed [`VaultSnapshot`]: the
    /// backbone (weights plus substitute graph), the rectifier weights
    /// and tap-set, the private real graph, and the enclave
    /// configuration, sealed under this deployment's seal key (purpose
    /// `"vault-snapshot"`).
    ///
    /// Encoding is deterministic — snapshotting the same vault twice
    /// yields identical bytes — and [`Vault::restore`] rebuilds a
    /// replica whose inference labels and per-call transition counts
    /// are bit-identical to this vault's, under the *same epoch*, so
    /// serving caches keyed `(epoch, node)` remain valid across
    /// replicas. The feature corpus is not captured: it is public,
    /// untrusted-world data supplied at serving time.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// # fn demo(vault: gnnvault::Vault, key: tee::SealKey) -> Result<(), gnnvault::VaultError> {
    /// let snapshot = vault.snapshot();
    /// // ... ship the snapshot to another worker ...
    /// let mut replica = gnnvault::Vault::restore(&snapshot, key)?;
    /// assert_eq!(replica.epoch(), snapshot.epoch());
    /// # Ok(())
    /// # }
    /// ```
    pub fn snapshot(&self) -> VaultSnapshot {
        match &self.partition {
            None => {
                let payload = snapshot::encode(
                    self.epoch,
                    self.epc_budget,
                    self.enclave.cost_model(),
                    self.policy,
                    &self.backbone,
                    &self.rectifier,
                    self.quantized.as_ref(),
                    &self.real_graph,
                );
                let sealed = Sealed::seal(self.seal_key.derive("vault-snapshot"), &payload);
                VaultSnapshot::from_parts(self.epoch, self.real_graph.num_nodes(), sealed)
            }
            // A partition replica re-snapshots as a partition image, so
            // its recovery handle restores the same partial vault.
            Some(p) => {
                let payload = snapshot::encode_partition(
                    self.epoch,
                    self.epc_budget,
                    self.enclave.cost_model(),
                    self.policy,
                    &self.backbone,
                    &self.rectifier,
                    self.quantized.as_ref(),
                    &snapshot::PartitionParts {
                        part: p.part,
                        parts: p.parts,
                        num_global_nodes: p.num_global_nodes,
                        owned: &p.owned,
                        local_ids: &p.local_ids,
                        original_degrees: &p.original_degrees,
                        local_graph: &self.real_graph,
                    },
                );
                let sealed = Sealed::seal(self.seal_key.derive("vault-snapshot"), &payload);
                VaultSnapshot::from_partition_parts(
                    self.epoch,
                    p.num_global_nodes,
                    crate::SnapshotPartition::new(p.part, p.parts),
                    sealed,
                )
            }
        }
    }

    /// Seals *one partition* of this deployment: the shared backbone
    /// and rectifier weights plus only partition `part`'s private graph
    /// state — its owned nodes, their halo closure at the rectifier's
    /// receptive-field depth, the full-graph degree vector for the
    /// closure, and the induced local COO. Restoring the result builds
    /// a *partial* vault that answers exactly the owned nodes,
    /// bit-identically to this vault.
    ///
    /// The sealed payload is strictly smaller than a full snapshot
    /// whenever the closure misses part of the graph, which is the
    /// point: N partitioned shards hold ~1/N of the private state each
    /// instead of N copies.
    ///
    /// # Errors
    ///
    /// Returns [`VaultError::InvalidConfig`] when called on a vault
    /// that is itself a partition replica, and
    /// [`VaultError::Graph`] when `spec` does not match this
    /// deployment's node count or `part` is out of range.
    pub fn snapshot_partition(
        &self,
        spec: &PartitionSpec,
        part: usize,
    ) -> Result<VaultSnapshot, VaultError> {
        if self.partition.is_some() {
            return Err(VaultError::InvalidConfig {
                reason: "cannot re-partition a partition replica; partition the full vault".into(),
            });
        }
        let gp = graph::partition::partition_one(
            &self.real_graph,
            spec,
            part,
            self.rectifier.num_layers(),
        )?;
        Ok(self.seal_graph_partition(&gp))
    }

    /// Seals every partition of `spec` in one pass (the full-graph
    /// adjacency scan runs once, not once per partition). Element `i`
    /// is partition `i`'s snapshot.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Vault::snapshot_partition`].
    pub fn partition_snapshots(
        &self,
        spec: &PartitionSpec,
    ) -> Result<Vec<VaultSnapshot>, VaultError> {
        if self.partition.is_some() {
            return Err(VaultError::InvalidConfig {
                reason: "cannot re-partition a partition replica; partition the full vault".into(),
            });
        }
        let parts =
            graph::partition::partition(&self.real_graph, spec, self.rectifier.num_layers())?;
        Ok(parts
            .iter()
            .map(|gp| self.seal_graph_partition(gp))
            .collect())
    }

    /// Restores one partial vault per partition of `spec` — the
    /// partitioned analogue of [`Vault::spawn_replicas`]. Each result
    /// shares this vault's epoch and answers only its owned nodes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Vault::snapshot_partition`], plus
    /// [`Vault::restore`] failures on the rebuild.
    pub fn spawn_partitions(&self, spec: &PartitionSpec) -> Result<Vec<Vault>, VaultError> {
        self.partition_snapshots(spec)?
            .iter()
            .map(|s| Self::restore(s, self.seal_key))
            .collect()
    }

    /// Encodes and seals one extracted partition under this vault's
    /// deployment key.
    fn seal_graph_partition(&self, gp: &graph::partition::GraphPartition) -> VaultSnapshot {
        let payload = snapshot::encode_partition(
            self.epoch,
            self.epc_budget,
            self.enclave.cost_model(),
            self.policy,
            &self.backbone,
            &self.rectifier,
            self.quantized.as_ref(),
            &snapshot::PartitionParts {
                part: gp.part(),
                parts: gp.num_parts(),
                num_global_nodes: self.real_graph.num_nodes(),
                owned: gp.owned(),
                local_ids: gp.local_ids(),
                original_degrees: gp.original_degrees(),
                local_graph: gp.graph(),
            },
        );
        let sealed = Sealed::seal(self.seal_key.derive("vault-snapshot"), &payload);
        VaultSnapshot::from_partition_parts(
            self.epoch,
            self.real_graph.num_nodes(),
            crate::SnapshotPartition::new(gp.part(), gp.num_parts()),
            sealed,
        )
    }

    /// Rehydrates a replica from a sealed snapshot.
    ///
    /// `seal_key` must be the deployment key the snapshotted vault was
    /// deployed (and therefore sealed) under — the SGX analogue of the
    /// platform sealing key an enclave re-derives after migration. The
    /// replica keeps the snapshot's epoch and is deployed with the
    /// snapshot's recorded EPC budget, cost model, and over-budget
    /// policy; its inference answers are bit-identical to the source
    /// vault's.
    ///
    /// # Errors
    ///
    /// Returns [`VaultError::Tee`] ([`tee::TeeError::SealTampered`])
    /// for a wrong key or corrupted payload, [`VaultError::Snapshot`]
    /// for a payload that unseals but does not decode, and the usual
    /// deployment failures (e.g. an EPC budget the resident set no
    /// longer fits) from the rebuild.
    pub fn restore(snapshot: &VaultSnapshot, seal_key: SealKey) -> Result<Vault, VaultError> {
        let payload = snapshot
            .sealed()
            .unseal(seal_key.derive("vault-snapshot"))?;
        let decoded = snapshot::decode(&payload)?;
        if decoded.epoch != snapshot.epoch() || decoded.num_global_nodes != snapshot.num_nodes() {
            return Err(VaultError::Snapshot {
                reason: "snapshot metadata disagrees with its sealed payload".into(),
            });
        }
        // The clear partition stamp must agree with the sealed payload:
        // a partition image relabeled as another partition (or as a full
        // replica) is a forgery, not a routing mistake.
        let sealed_stamp = decoded
            .partition
            .as_ref()
            .map(|p| crate::SnapshotPartition::new(p.part, p.parts));
        if sealed_stamp != snapshot.partition() {
            return Err(VaultError::Snapshot {
                reason: "snapshot partition stamp disagrees with its sealed payload".into(),
            });
        }
        let num_global_nodes = decoded.num_global_nodes;
        let partition = decoded.partition.map(|p| VaultPartition {
            part: p.part,
            parts: p.parts,
            num_global_nodes,
            owned: p.owned,
            local_ids: p.local_ids,
            original_degrees: p.original_degrees,
        });
        Self::deploy_with_epoch(
            decoded.backbone,
            decoded.rectifier,
            &decoded.real_graph,
            decoded.epc_budget,
            decoded.cost,
            decoded.policy,
            seal_key,
            decoded.epoch,
            partition,
            decoded.quantized,
        )
    }

    /// Spawns an independent replica of this deployment by round-
    /// tripping through [`Vault::snapshot`] / [`Vault::restore`] with
    /// this vault's own seal key — the path a sharded serving runtime
    /// uses to fan one trained vault out across worker shards. The
    /// replica shares this vault's epoch (same model, same answers) but
    /// owns its own enclave, meter, and session-id space.
    ///
    /// # Errors
    ///
    /// Propagates [`Vault::restore`] failures; with a self-produced
    /// snapshot these only occur when the deployment cannot be rebuilt
    /// (e.g. the EPC budget race-changed — impossible here — or an
    /// internal encoding bug).
    pub fn spawn_replica(&self) -> Result<Vault, VaultError> {
        Self::restore(&self.snapshot(), self.seal_key)
    }

    /// Spawns `count` independent replicas from a *single* snapshot —
    /// the encode/seal pass runs once, not once per replica, so fanning
    /// a large model out across many shards costs one serialization
    /// plus `count` restores.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Vault::spawn_replica`].
    pub fn spawn_replicas(&self, count: usize) -> Result<Vec<Vault>, VaultError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let snapshot = self.snapshot();
        (0..count)
            .map(|_| Self::restore(&snapshot, self.seal_key))
            .collect()
    }

    /// Bundles a sealed snapshot of this vault's *current* model with
    /// the deployment key into a [`RecoveryHandle`], the unit a
    /// supervisor retains per worker so a crashed replica can be
    /// restored without reaching back to the original vault (which may
    /// live on another thread — or not exist any more).
    pub fn recovery_handle(&self) -> RecoveryHandle {
        RecoveryHandle::new(self.snapshot(), self.seal_key)
    }

    /// Deployment epoch of this vault: unique within the current
    /// process, minted fresh at every [`Vault::deploy`]. Serving layers
    /// key *in-memory* result caches by `(epoch, node)` so entries from
    /// a superseded deployment can never be served by a newer one.
    /// Epochs restart with the process, so a cache persisted beyond the
    /// process lifetime additionally needs a boot-unique key component.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of nodes in the deployed (real) graph; valid query ids
    /// for [`Vault::infer_node`] / [`Vault::infer_batch`] are
    /// `0..num_nodes`. Not a secret: the untrusted world already knows
    /// it from the feature matrix it runs the backbone on. A partition
    /// replica still reports the *global* count — its corpus and query
    /// id space are shared with every other partition — even though it
    /// only answers its owned subset.
    pub fn num_nodes(&self) -> usize {
        match &self.partition {
            Some(p) => p.num_global_nodes,
            None => self.real_graph.num_nodes(),
        }
    }

    /// `Some((part, parts))` on a partition replica, `None` on a full
    /// vault. Public routing metadata.
    pub fn partition_info(&self) -> Option<(usize, usize)> {
        self.partition.as_ref().map(|p| (p.part, p.parts))
    }

    /// The global node ids a partition replica answers (`None` on a
    /// full vault, which answers everything). Ownership is a pure
    /// function of the node id — not derived from private edges — so
    /// exposing the list leaks nothing about the private graph.
    pub fn owned_nodes(&self) -> Option<&[usize]> {
        self.partition.as_ref().map(|p| p.owned.as_slice())
    }

    /// Bytes currently allocated inside the enclave (resident set plus
    /// any live transients). Serving tests use it to prove failed
    /// batches roll their transient allocations back.
    pub fn enclave_in_use_bytes(&self) -> usize {
        self.enclave.current_usage()
    }

    /// Opens a new enclave session for batched inference
    /// ([`Vault::infer_batch`]): a long-lived ingress channel a serving
    /// worker reuses across batches. Session ids are unique per vault.
    pub fn open_session(&mut self) -> EnclaveSession {
        let id = SessionId(self.next_session);
        self.next_session += 1;
        EnclaveSession::new(id)
    }

    /// Switches the serving precision. Idempotent.
    ///
    /// Moving to [`Precision::Int8`] quantizes every projection weight
    /// (per-output-channel symmetric int8, see
    /// [`linalg::QuantizedMatrix`]) and re-accounts the resident
    /// rectifier parameters in the enclave ledger at the quantized
    /// size; moving back to [`Precision::F32`] drops the mirror and
    /// restores the f32 accounting. The f32 weights are always
    /// retained, so the switch is lossless in both directions:
    /// quantization is a deterministic function of the f32 weights, and
    /// `quantize(dequantize(q)) == q` makes re-quantization a fixed
    /// point.
    ///
    /// # Errors
    ///
    /// Returns [`VaultError::Tee`] when the re-accounting is rejected
    /// under [`OverBudgetPolicy::Fail`] — the new allocation is charged
    /// before the old one is released, so a rejected switch leaves the
    /// ledger (and the vault) exactly as it found them.
    pub fn set_precision(&mut self, precision: Precision) -> Result<(), VaultError> {
        match precision {
            Precision::Int8 => {
                if self.quantized.is_some() {
                    return Ok(());
                }
                let model = QuantizedModel {
                    backbone: self.backbone.quantize_network(),
                    rectifier: self.rectifier.quantize_layers(),
                };
                let id = self
                    .enclave
                    .alloc("rectifier parameters (int8)", model.rectifier_nbytes())?;
                self.enclave.free(self.rectifier_params_alloc)?;
                self.rectifier_params_alloc = id;
                self.quantized = Some(model);
            }
            Precision::F32 => {
                if self.quantized.is_none() {
                    return Ok(());
                }
                let id = self
                    .enclave
                    .alloc("rectifier parameters", self.rectifier.nbytes())?;
                self.enclave.free(self.rectifier_params_alloc)?;
                self.rectifier_params_alloc = id;
                self.quantized = None;
            }
        }
        Ok(())
    }

    /// The precision this vault currently serves at.
    pub fn precision(&self) -> Precision {
        if self.quantized.is_some() {
            Precision::Int8
        } else {
            Precision::F32
        }
    }

    /// Backbone forward at the serving precision.
    fn backbone_embeddings(&self, features: &DenseMatrix) -> Result<Vec<DenseMatrix>, VaultError> {
        match &self.quantized {
            Some(q) => self.backbone.embeddings_quantized(&q.backbone, features),
            None => self.backbone.embeddings(features),
        }
    }

    /// Total enclave transitions (ECALLs) charged over the vault's
    /// lifetime — the counter behind each report's per-call
    /// [`InferenceReport::transitions`] delta. Serving tests use it to
    /// prove cache hits never re-enter the enclave.
    pub fn enclave_transitions(&self) -> u64 {
        self.enclave.transitions()
    }

    /// The public backbone (the attacker-visible half).
    pub fn backbone(&self) -> &Backbone {
        &self.backbone
    }

    /// The rectifier's communication scheme.
    pub fn rectifier_kind(&self) -> crate::RectifierKind {
        self.rectifier.kind()
    }

    /// Parameter count inside the enclave (`θrec`).
    pub fn rectifier_param_count(&self) -> usize {
        self.rectifier.param_count()
    }

    /// Peak enclave memory so far (Fig. 6 bottom).
    pub fn peak_enclave_bytes(&self) -> usize {
        self.enclave.peak_usage()
    }

    /// Labels of the sealed at-rest artifacts.
    pub fn sealed_artifact_labels(&self) -> Vec<&str> {
        self.sealed_artifacts
            .iter()
            .map(|(l, _)| l.as_str())
            .collect()
    }

    /// Shared meter handle (accumulates across inferences).
    pub fn meter(&self) -> Meter {
        self.enclave.meter()
    }

    /// Runs one full-graph inference through the split pipeline and
    /// returns per-node class labels plus the timing report.
    ///
    /// Step by step (Fig. 6's decomposition):
    /// 1. backbone forward in the untrusted world (wall-clock metered),
    /// 2. tap embeddings encoded and sent over the one-way channel
    ///    (simulated marshalling cost),
    /// 3. rectifier forward inside the enclave (wall-clock metered,
    ///    transient activations accounted against the EPC),
    /// 4. argmax inside the enclave; only [`ClassLabel`]s exit.
    ///
    /// # Errors
    ///
    /// Propagates backbone/rectifier failures and enclave memory
    /// rejections.
    pub fn infer(
        &mut self,
        features: &DenseMatrix,
    ) -> Result<(Vec<ClassLabel>, InferenceReport), VaultError> {
        if let Some(p) = &self.partition {
            return Err(VaultError::InvalidConfig {
                reason: format!(
                    "partition replica {}/{} answers only its owned nodes; \
                     use infer_batch or infer_node",
                    p.part, p.parts
                ),
            });
        }
        let meter = self.enclave.meter();
        meter.reset();
        let transitions_before = self.enclave.transitions();

        // 1. Public backbone in the untrusted world.
        let embeddings = meter.time(Phase::Backbone, || self.backbone_embeddings(features))?;

        // 2. One-way transfer of exactly the tapped embeddings.
        let taps = self.rectifier.tap_indices();
        let mut channel = UntrustedToEnclave::new();
        for &t in &taps {
            let payload = codec::encode_dense(&embeddings[t]);
            channel.send(&mut self.enclave, payload)?;
        }
        let transferred_bytes = channel.total_bytes();

        // Enclave side: decode payloads back into tap embeddings.
        let payloads = channel.drain();
        let enclave_embeddings = Self::decode_tap_embeddings(&taps, &payloads, &embeddings)?;

        // 3. Rectifier inside the enclave, with transient activation
        //    buffers accounted against the EPC. The buffers are freed
        //    whether or not the forward succeeds: a long-lived serving
        //    enclave must not leak EPC on a failed batch.
        let transient = self.alloc_transient_activations(features.rows())?;
        let forward_result = {
            let rectifier = &self.rectifier;
            let real_adj = &self.real_adj;
            let quantized = self.quantized.as_ref();
            self.enclave.run(|| match quantized {
                Some(q) => rectifier.forward_quantized(&q.rectifier, real_adj, &enclave_embeddings),
                None => rectifier.forward(real_adj, &enclave_embeddings),
            })
        };
        for id in transient {
            self.enclave.free(id)?;
        }
        let forward = forward_result?;

        // 4. Label-only egress: logits stay inside.
        let labels: Vec<ClassLabel> = linalg::ops::argmax_rows(forward.logits())
            .into_iter()
            .map(ClassLabel)
            .collect();

        let breakdown = meter.breakdown();
        let get = |phase: Phase| breakdown.get(&phase).copied().unwrap_or_default();
        let report = InferenceReport {
            backbone_ns: get(Phase::Backbone).total_ns(),
            transfer_ns: get(Phase::Transfer).total_ns(),
            rectifier_ns: get(Phase::Enclave).total_ns() + get(Phase::PageSwap).total_ns(),
            transferred_bytes,
            transitions: self.enclave.transitions() - transitions_before,
            peak_enclave_bytes: self.enclave.peak_usage(),
        };
        Ok((labels, report))
    }

    /// Runs one batched inference for `nodes` through an open enclave
    /// session, amortizing one enclave transition set per *batch*
    /// instead of one per queried node.
    ///
    /// The split pipeline runs exactly once for the whole batch: one
    /// backbone forward in the untrusted world (on the shared `linalg`
    /// pool), one tap-set transfer through the session's reusable
    /// channel, one rectifier pass inside the enclave with its transient
    /// activations allocated (and accounted) once, and label-only egress
    /// for exactly the queried nodes. Because the enclave computation is
    /// the same full-graph rectification as [`Vault::infer`], the
    /// returned labels are bit-identical to running `infer` and reading
    /// the queried rows — batching changes cost, never answers.
    ///
    /// The report's [`InferenceReport::transitions`] is the per-batch
    /// delta, so `transitions / nodes.len()` is the per-node ECALL cost
    /// a serving layer is trying to drive down.
    ///
    /// # Errors
    ///
    /// Returns [`VaultError::InvalidConfig`] on an empty batch or an
    /// out-of-range node id; otherwise propagates the same failures as
    /// [`Vault::infer`].
    ///
    /// # Examples
    ///
    /// ```
    /// use gnnvault::{Backbone, Rectifier, RectifierKind, SubstituteKind, Vault};
    /// use linalg::DenseMatrix;
    /// use nn::TrainConfig;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let x = DenseMatrix::from_rows(&[
    ///     &[1.0, 0.0], &[0.9, 0.1], &[0.0, 1.0], &[0.1, 0.9],
    /// ])?;
    /// let labels = vec![0, 0, 1, 1];
    /// let real = graph::Graph::from_edges(4, &[(0, 1), (2, 3)])?;
    /// let cfg = TrainConfig { epochs: 15, dropout: 0.0, ..Default::default() };
    /// let backbone = Backbone::train(
    ///     &x, &labels, &[0, 1, 2, 3], SubstituteKind::Knn { k: 1 },
    ///     &[4, 2], real.num_edges(), &cfg, 1,
    /// )?;
    /// let mut rectifier = Rectifier::new(
    ///     RectifierKind::Series, &[4, 2], &backbone.channel_dims(), 2,
    /// )?;
    /// let real_adj = graph::normalization::gcn_normalize(&real);
    /// let embs = backbone.embeddings(&x)?;
    /// rectifier.fit(&real_adj, &embs, &labels, &[0, 1, 2, 3], &cfg)?;
    /// let mut vault = Vault::deploy(
    ///     backbone, rectifier, &real, tee::SGX_EPC_BYTES,
    ///     tee::CostModel::default(), tee::OverBudgetPolicy::Fail, tee::SealKey(1),
    /// )?;
    ///
    /// // One session, reused across batches; one transition set per batch.
    /// let mut session = vault.open_session();
    /// let (batch_labels, report) = vault.infer_batch(&mut session, &x, &[0, 3, 0])?;
    /// assert_eq!(batch_labels.len(), 3);
    /// assert_eq!(batch_labels[0], batch_labels[2], "same node, same label");
    /// assert!(report.transitions >= 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn infer_batch(
        &mut self,
        session: &mut EnclaveSession,
        features: &DenseMatrix,
        nodes: &[usize],
    ) -> Result<(Vec<ClassLabel>, InferenceReport), VaultError> {
        if nodes.is_empty() {
            return Err(VaultError::InvalidConfig {
                reason: "empty batch: at least one query node is required".into(),
            });
        }
        if let Some(&bad) = nodes.iter().find(|&&n| n >= self.num_nodes()) {
            return Err(VaultError::InvalidConfig {
                reason: format!(
                    "query node {bad} out of range for {} nodes",
                    self.num_nodes()
                ),
            });
        }
        // A partition replica answers only its owned nodes; anything
        // else is a routing error the caller must surface, not a silent
        // wrong answer.
        if let Some(p) = &self.partition {
            if let Some(&node) = nodes.iter().find(|&&n| !p.owns(n)) {
                return Err(VaultError::NotOwned {
                    node,
                    part: p.part,
                    parts: p.parts,
                });
            }
        }
        let meter = self.enclave.meter();
        meter.reset();
        let transitions_before = self.enclave.transitions();

        // 1. One backbone forward for the whole batch.
        let embeddings = meter.time(Phase::Backbone, || self.backbone_embeddings(features))?;

        // 2. One tap-set transfer per batch, through the session's
        //    long-lived channel.
        let taps = self.rectifier.tap_indices();
        session.begin_batch();
        for &t in &taps {
            session.send(&mut self.enclave, codec::encode_dense(&embeddings[t]))?;
        }
        let transferred_bytes = session.batch_bytes();
        let payloads = session.drain();
        let enclave_embeddings = Self::decode_tap_embeddings(&taps, &payloads, &embeddings)?;

        // Partition replica: select the closure's rows *inside* the
        // enclave. The untrusted world ships the same full tap set as
        // always — halo membership is derived from the private edges
        // and never crosses the boundary.
        let enclave_embeddings = match &self.partition {
            Some(p) => {
                let mut local = Vec::with_capacity(enclave_embeddings.len());
                for e in &enclave_embeddings {
                    local.push(e.select_rows(&p.local_ids)?);
                }
                local
            }
            None => enclave_embeddings,
        };

        // 3. One rectifier pass per batch; transient activations are
        //    allocated (and EPC-accounted) once, not once per query, and
        //    freed even when the forward fails so a failed batch cannot
        //    degrade the serving enclave. On a partition replica the
        //    buffers shrink to the closure's row count.
        let forward_rows = match &self.partition {
            Some(p) => p.local_ids.len(),
            None => features.rows(),
        };
        let transient = self.alloc_transient_activations(forward_rows)?;
        let forward_result = {
            let rectifier = &self.rectifier;
            let real_adj = &self.real_adj;
            let quantized = self.quantized.as_ref();
            self.enclave.run(|| match quantized {
                Some(q) => rectifier.forward_quantized(&q.rectifier, real_adj, &enclave_embeddings),
                None => rectifier.forward(real_adj, &enclave_embeddings),
            })
        };
        for id in transient {
            self.enclave.free(id)?;
        }
        let forward = forward_result?;

        // 4. Label-only egress for exactly the queried nodes (global
        //    ids translate to closure rows on a partition replica).
        let all_labels = linalg::ops::argmax_rows(forward.logits());
        let labels = match &self.partition {
            Some(p) => nodes
                .iter()
                .map(|&n| {
                    let local = p.local_id(n).expect("ownership was validated above");
                    ClassLabel(all_labels[local])
                })
                .collect(),
            None => nodes.iter().map(|&n| ClassLabel(all_labels[n])).collect(),
        };

        let breakdown = meter.breakdown();
        let get = |phase: Phase| breakdown.get(&phase).copied().unwrap_or_default();
        let report = InferenceReport {
            backbone_ns: get(Phase::Backbone).total_ns(),
            transfer_ns: get(Phase::Transfer).total_ns(),
            rectifier_ns: get(Phase::Enclave).total_ns() + get(Phase::PageSwap).total_ns(),
            transferred_bytes,
            transitions: self.enclave.transitions() - transitions_before,
            peak_enclave_bytes: self.enclave.peak_usage(),
        };
        Ok((labels, report))
    }

    /// Decodes world-crossing tap payloads back into the full embedding
    /// list the rectifier wiring expects. Non-tapped slots are never
    /// read, so zero-row placeholders stand in; slots a shallow-backbone
    /// fallback rule could touch are padded to full height.
    fn decode_tap_embeddings<P: AsRef<[u8]>>(
        taps: &[usize],
        payloads: &[P],
        embeddings: &[DenseMatrix],
    ) -> Result<Vec<DenseMatrix>, VaultError> {
        let mut enclave_embeddings: Vec<DenseMatrix> = embeddings
            .iter()
            .map(|e| DenseMatrix::zeros(0, e.cols()))
            .collect();
        for (&t, payload) in taps.iter().zip(payloads) {
            enclave_embeddings[t] = codec::decode_dense(payload.as_ref())?;
        }
        for (slot, original) in enclave_embeddings.iter_mut().zip(embeddings) {
            if slot.rows() == 0 && original.rows() != 0 {
                *slot = DenseMatrix::zeros(original.rows(), original.cols());
            }
        }
        Ok(enclave_embeddings)
    }

    /// Accounts the rectifier's transient per-layer activation buffers
    /// for an `n`-row forward against the EPC, returning the allocation
    /// ids to free once logits have been produced. On a mid-sequence
    /// rejection the already-made allocations are rolled back, so a
    /// failed inference leaves the enclave ledger exactly as it found
    /// it.
    fn alloc_transient_activations(&mut self, n: usize) -> Result<Vec<AllocationId>, VaultError> {
        let mut transient = Vec::new();
        for (in_dim, out_dim) in self
            .rectifier
            .input_dims()
            .into_iter()
            .zip(self.rectifier.channel_dims())
        {
            match self.enclave.alloc(
                "layer activation",
                n * (in_dim + out_dim) * std::mem::size_of::<f32>(),
            ) {
                Ok(id) => transient.push(id),
                Err(e) => {
                    // Fresh ids: free cannot fail here.
                    for id in transient {
                        let _ = self.enclave.free(id);
                    }
                    return Err(e.into());
                }
            }
        }
        Ok(transient)
    }

    /// Answers a single-node query (the threat model's query interface).
    ///
    /// The untrusted world still computes and ships the tap embeddings
    /// (it cannot know which rows matter — the neighbourhood is
    /// private); *inside* the enclave, the node's k-hop ego graph is
    /// extracted (k = rectifier depth), normalized with the original
    /// degrees so the centre's embedding is exact, and only that
    /// subgraph is rectified. Enclave compute and transient memory
    /// shrink to the neighbourhood size.
    ///
    /// # Errors
    ///
    /// Returns [`VaultError::InvalidConfig`] when `node` is out of
    /// range; otherwise propagates the same failures as
    /// [`Vault::infer`].
    pub fn infer_node(
        &mut self,
        features: &DenseMatrix,
        node: usize,
    ) -> Result<(ClassLabel, InferenceReport), VaultError> {
        if node >= self.num_nodes() {
            return Err(VaultError::InvalidConfig {
                reason: format!(
                    "query node {node} out of range for {} nodes",
                    self.num_nodes()
                ),
            });
        }
        if let Some(p) = &self.partition {
            if !p.owns(node) {
                return Err(VaultError::NotOwned {
                    node,
                    part: p.part,
                    parts: p.parts,
                });
            }
        }
        let meter = self.enclave.meter();
        meter.reset();
        let transitions_before = self.enclave.transitions();

        let embeddings = meter.time(Phase::Backbone, || self.backbone_embeddings(features))?;
        let taps = self.rectifier.tap_indices();
        let mut channel = UntrustedToEnclave::new();
        for &t in &taps {
            channel.send(&mut self.enclave, codec::encode_dense(&embeddings[t]))?;
        }
        let transferred_bytes = channel.total_bytes();
        let payloads = channel.drain();

        // --- enclave side: ego extraction + subgraph rectification ---
        let hops = self.rectifier.num_layers();
        let (label, peak) = {
            let rectifier = &self.rectifier;
            let real_graph = &self.real_graph;
            let partition = self.partition.as_ref();
            let quantized = self.quantized.as_ref();
            let enclave = &self.enclave;
            let out = enclave.run(|| -> Result<ClassLabel, VaultError> {
                // On a partition replica the ego expansion runs on the
                // local closure. Distances up to `hops` agree with the
                // full graph because the closure spans the owned set's
                // whole receptive field.
                let center = match partition {
                    Some(p) => p.local_id(node).expect("ownership was validated above"),
                    None => node,
                };
                let ego = graph::subgraph::ego_graph(real_graph, center, hops)?;
                let degrees: Vec<usize> = match partition {
                    Some(p) => ego
                        .original_ids
                        .iter()
                        .map(|&l| p.original_degrees[l])
                        .collect(),
                    None => ego.original_degrees.clone(),
                };
                let ego_adj =
                    graph::normalization::gcn_normalize_with_degrees(&ego.graph, &degrees);
                // Rows to pull from the full decoded tap payloads are
                // *global* ids; a partition's ego ids are local.
                let global_rows: Vec<usize> = match partition {
                    Some(p) => ego.original_ids.iter().map(|&l| p.local_ids[l]).collect(),
                    None => ego.original_ids.clone(),
                };
                let mut ego_embeddings: Vec<DenseMatrix> = embeddings
                    .iter()
                    .map(|e| DenseMatrix::zeros(ego.graph.num_nodes(), e.cols()))
                    .collect();
                for (&t, payload) in taps.iter().zip(&payloads) {
                    let full = codec::decode_dense(payload)?;
                    ego_embeddings[t] = full.select_rows(&global_rows)?;
                }
                let forward = match quantized {
                    Some(q) => {
                        rectifier.forward_quantized(&q.rectifier, &ego_adj, &ego_embeddings)?
                    }
                    None => rectifier.forward(&ego_adj, &ego_embeddings)?,
                };
                let preds = linalg::ops::argmax_rows(forward.logits());
                Ok(ClassLabel(preds[ego.center]))
            })?;
            (out, self.enclave.peak_usage())
        };

        let breakdown = meter.breakdown();
        let get = |phase: Phase| breakdown.get(&phase).copied().unwrap_or_default();
        Ok((
            label,
            InferenceReport {
                backbone_ns: get(Phase::Backbone).total_ns(),
                transfer_ns: get(Phase::Transfer).total_ns(),
                rectifier_ns: get(Phase::Enclave).total_ns() + get(Phase::PageSwap).total_ns(),
                transferred_bytes,
                transitions: self.enclave.transitions() - transitions_before,
                peak_enclave_bytes: peak,
            },
        ))
    }
}

/// A self-contained recipe for rebuilding one vault replica: a sealed
/// [`VaultSnapshot`] plus the deployment [`SealKey`] it was sealed
/// under.
///
/// This is the retention unit of a supervised serving runtime: each
/// worker keeps the handle of the model it is currently serving, so a
/// crashed replica can be restored in place ([`RecoveryHandle::restore`])
/// and a failed hot-swap can roll back to the previously installed
/// epoch — without reaching back to the original vault, which may be
/// owned by another thread or already gone. The snapshot is shared
/// behind an [`Arc`], so cloning a handle (e.g. keeping the previous
/// epoch for rollback) does not copy the sealed payload.
///
/// The seal key inside is deployment-secret material; `Debug` redacts
/// it.
#[derive(Clone)]
pub struct RecoveryHandle {
    snapshot: Arc<VaultSnapshot>,
    seal_key: SealKey,
}

impl RecoveryHandle {
    /// Wraps a snapshot and the key it was sealed under.
    pub fn new(snapshot: VaultSnapshot, seal_key: SealKey) -> Self {
        Self::from_shared(Arc::new(snapshot), seal_key)
    }

    /// Like [`RecoveryHandle::new`], but reuses an already-shared
    /// snapshot (no payload copy).
    pub fn from_shared(snapshot: Arc<VaultSnapshot>, seal_key: SealKey) -> Self {
        Self { snapshot, seal_key }
    }

    /// The epoch this handle restores to.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Number of nodes in the snapshotted deployment.
    pub fn num_nodes(&self) -> usize {
        self.snapshot.num_nodes()
    }

    /// Rebuilds a fresh replica from the retained snapshot — the
    /// supervisor's restart path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Vault::restore`].
    pub fn restore(&self) -> Result<Vault, VaultError> {
        Vault::restore(&self.snapshot, self.seal_key)
    }
}

impl std::fmt::Debug for RecoveryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryHandle")
            .field("epoch", &self.snapshot.epoch())
            .field("num_nodes", &self.snapshot.num_nodes())
            .field("seal_key", &"<redacted>")
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RectifierKind, SubstituteKind};
    use nn::TrainConfig;

    fn toy_vault(kind: RectifierKind) -> (Vault, DenseMatrix, Vec<usize>) {
        toy_vault_with_budget(kind, tee::SGX_EPC_BYTES)
    }

    fn toy_vault_with_budget(
        kind: RectifierKind,
        epc_budget: usize,
    ) -> (Vault, DenseMatrix, Vec<usize>) {
        let x = DenseMatrix::from_rows(&[
            &[1.0, 0.0],
            &[0.9, 0.1],
            &[1.0, 0.2],
            &[0.0, 1.0],
            &[0.1, 0.9],
            &[0.2, 1.0],
        ])
        .unwrap();
        let labels = vec![0, 0, 0, 1, 1, 1];
        let train = vec![0, 1, 3, 4];
        let real = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        let cfg = TrainConfig {
            epochs: 60,
            lr: 0.05,
            weight_decay: 0.0,
            dropout: 0.0,
            seed: 0,
        };
        let backbone = Backbone::train(
            &x,
            &labels,
            &train,
            SubstituteKind::Knn { k: 2 },
            &[8, 4, 2],
            real.num_edges(),
            &cfg,
            1,
        )
        .unwrap();
        let mut rectifier = Rectifier::new(kind, &[8, 4, 2], &backbone.channel_dims(), 2).unwrap();
        let real_adj = graph::normalization::gcn_normalize(&real);
        let embs = backbone.embeddings(&x).unwrap();
        rectifier
            .fit(&real_adj, &embs, &labels, &train, &cfg)
            .unwrap();
        let vault = Vault::deploy(
            backbone,
            rectifier,
            &real,
            epc_budget,
            CostModel::default(),
            OverBudgetPolicy::Fail,
            SealKey(7),
        )
        .unwrap();
        (vault, x, labels)
    }

    #[test]
    fn infer_returns_labels_and_report() {
        for kind in RectifierKind::ALL {
            let (mut vault, x, labels) = toy_vault(kind);
            let (preds, report) = vault.infer(&x).unwrap();
            assert_eq!(preds.len(), 6, "{kind:?}");
            let acc = preds.iter().zip(&labels).filter(|(p, &l)| p.0 == l).count() as f32 / 6.0;
            assert!(acc >= 0.5, "{kind:?} acc {acc}");
            assert!(report.transferred_bytes > 0);
            assert!(report.transfer_ns > 0);
            assert!(report.peak_enclave_bytes > 0);
            assert_eq!(
                report.transitions,
                vault.rectifier.tap_indices().len() as u64
            );
        }
    }

    #[test]
    fn series_transfers_fewest_bytes() {
        let (mut parallel, x, _) = toy_vault(RectifierKind::Parallel);
        let (mut cascaded, _, _) = toy_vault(RectifierKind::Cascaded);
        let (mut series, _, _) = toy_vault(RectifierKind::Series);
        let (_, rp) = parallel.infer(&x).unwrap();
        let (_, rc) = cascaded.infer(&x).unwrap();
        let (_, rs) = series.infer(&x).unwrap();
        assert!(rs.transferred_bytes < rp.transferred_bytes);
        assert!(rs.transferred_bytes < rc.transferred_bytes);
    }

    #[test]
    fn deploy_seals_artifacts_and_accounts_memory() {
        let (vault, _, _) = toy_vault(RectifierKind::Series);
        let labels = vault.sealed_artifact_labels();
        assert!(labels.contains(&"rectifier-shape"));
        assert!(labels.contains(&"real-graph-coo"));
        assert!(vault.peak_enclave_bytes() > 0);
        assert!(vault.rectifier_param_count() > 0);
    }

    #[test]
    fn infer_node_matches_full_graph_inference() {
        for kind in RectifierKind::ALL {
            let (mut vault, x, _) = toy_vault(kind);
            let (full_labels, _) = vault.infer(&x).unwrap();
            #[allow(clippy::needless_range_loop)] // node is also the query argument
            for node in 0..x.rows() {
                let (label, report) = vault.infer_node(&x, node).unwrap();
                assert_eq!(
                    label, full_labels[node],
                    "{kind:?}: node {node} ego-query disagrees with full inference"
                );
                assert!(report.transferred_bytes > 0);
            }
        }
    }

    #[test]
    fn infer_batch_matches_per_node_infer() {
        for kind in RectifierKind::ALL {
            let (mut vault, x, _) = toy_vault(kind);
            let (full, _) = vault.infer(&x).unwrap();
            let mut session = vault.open_session();
            let nodes: Vec<usize> = (0..x.rows()).collect();
            let (batched, report) = vault.infer_batch(&mut session, &x, &nodes).unwrap();
            assert_eq!(batched, full, "{kind:?}: batch must equal full inference");
            assert_eq!(
                report.transitions,
                vault.rectifier.tap_indices().len() as u64,
                "{kind:?}: one transition per tap per batch"
            );
            // Duplicate and subset queries read the same logits.
            let (dup, _) = vault.infer_batch(&mut session, &x, &[2, 2, 5]).unwrap();
            assert_eq!(dup, vec![full[2], full[2], full[5]], "{kind:?}");
            assert_eq!(session.batches_served(), 2);
        }
    }

    #[test]
    fn batch_amortizes_transitions_over_per_node_queries() {
        let (mut vault, x, _) = toy_vault(RectifierKind::Cascaded);
        let mut per_node_total = 0;
        for node in 0..x.rows() {
            let (_, r) = vault.infer_node(&x, node).unwrap();
            per_node_total += r.transitions;
        }
        let mut session = vault.open_session();
        let nodes: Vec<usize> = (0..x.rows()).collect();
        let (_, batch) = vault.infer_batch(&mut session, &x, &nodes).unwrap();
        assert!(
            batch.transitions < per_node_total,
            "batch {} vs per-node {}",
            batch.transitions,
            per_node_total
        );
        // Per-call delta semantics: a second batch on the same session
        // charges the same amount again, not a cumulative total.
        let (_, second) = vault.infer_batch(&mut session, &x, &nodes).unwrap();
        assert_eq!(second.transitions, batch.transitions);
        assert_eq!(
            vault.enclave_transitions(),
            per_node_total + 2 * batch.transitions
        );
    }

    #[test]
    fn infer_batch_rejects_empty_and_out_of_range() {
        let (mut vault, x, _) = toy_vault(RectifierKind::Series);
        let mut session = vault.open_session();
        assert!(matches!(
            vault.infer_batch(&mut session, &x, &[]),
            Err(VaultError::InvalidConfig { .. })
        ));
        assert!(matches!(
            vault.infer_batch(&mut session, &x, &[0, 99]),
            Err(VaultError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn failed_inference_rolls_back_transient_allocations() {
        // Measure the resident set, then redeploy with just enough
        // headroom for the first transient activation but not the
        // second — the mid-sequence rejection path.
        let (probe, x, _) = toy_vault(RectifierKind::Series);
        let resident = probe.enclave_in_use_bytes();
        let dims: Vec<(usize, usize)> = probe
            .rectifier
            .input_dims()
            .into_iter()
            .zip(probe.rectifier.channel_dims())
            .collect();
        let first_transient = x.rows() * (dims[0].0 + dims[0].1) * std::mem::size_of::<f32>();
        drop(probe);

        let (mut tight, x, _) =
            toy_vault_with_budget(RectifierKind::Series, resident + first_transient + 16);
        let before = tight.enclave_in_use_bytes();
        assert_eq!(before, resident, "deployments are deterministic");

        let mut session = tight.open_session();
        for _ in 0..3 {
            assert!(matches!(
                tight.infer_batch(&mut session, &x, &[0]),
                Err(VaultError::Tee(tee::TeeError::EpcExhausted { .. }))
            ));
            assert_eq!(
                tight.enclave_in_use_bytes(),
                before,
                "failed batches must not leak enclave memory"
            );
        }
        assert!(tight.infer(&x).is_err());
        assert_eq!(tight.enclave_in_use_bytes(), before);
    }

    #[test]
    fn spawn_replicas_shares_one_snapshot_and_answers_identically() {
        let (mut vault, x, _) = toy_vault(RectifierKind::Series);
        let (labels, _) = vault.infer(&x).unwrap();
        let replicas = vault.spawn_replicas(2).unwrap();
        assert_eq!(replicas.len(), 2);
        for mut replica in replicas {
            assert_eq!(replica.epoch(), vault.epoch(), "same model, same epoch");
            let (replica_labels, _) = replica.infer(&x).unwrap();
            assert_eq!(replica_labels, labels);
        }
        assert!(vault.spawn_replicas(0).unwrap().is_empty());
    }

    #[test]
    fn recovery_handle_restores_a_bit_identical_replica() {
        let (mut vault, x, _) = toy_vault(RectifierKind::Series);
        let (labels, _) = vault.infer(&x).unwrap();
        let handle = vault.recovery_handle();
        assert_eq!(handle.epoch(), vault.epoch());
        assert_eq!(handle.num_nodes(), vault.num_nodes());
        // Cloning shares the sealed payload; both handles restore.
        let retained = handle.clone();
        for h in [handle, retained] {
            let mut revived = h.restore().unwrap();
            assert_eq!(revived.epoch(), vault.epoch());
            let (revived_labels, _) = revived.infer(&x).unwrap();
            assert_eq!(revived_labels, labels);
        }
        let debug = format!("{:?}", vault.recovery_handle());
        assert!(debug.contains("<redacted>"), "seal key must not leak");
        assert!(!debug.contains("SealKey(7"), "seal key must not leak");
    }

    #[test]
    fn epochs_and_session_ids_are_unique() {
        let (mut v1, _, _) = toy_vault(RectifierKind::Series);
        let (v2, _, _) = toy_vault(RectifierKind::Series);
        assert_ne!(v1.epoch(), v2.epoch());
        assert!(v1.epoch() > 0 && v2.epoch() > 0);
        let s0 = v1.open_session();
        let s1 = v1.open_session();
        assert_ne!(s0.id(), s1.id());
    }

    #[test]
    fn infer_node_rejects_out_of_range() {
        let (mut vault, x, _) = toy_vault(RectifierKind::Series);
        assert!(matches!(
            vault.infer_node(&x, 999),
            Err(VaultError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn tiny_epc_budget_rejects_deployment() {
        let x = DenseMatrix::from_rows(&[&[1.0], &[0.0]]).unwrap();
        let labels = vec![0usize, 1];
        let real = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let cfg = TrainConfig {
            epochs: 2,
            ..Default::default()
        };
        let backbone = Backbone::train(
            &x,
            &labels,
            &[0, 1],
            SubstituteKind::Knn { k: 1 },
            &[4, 2],
            1,
            &cfg,
            0,
        )
        .unwrap();
        let rectifier =
            Rectifier::new(RectifierKind::Series, &[4, 2], &backbone.channel_dims(), 0).unwrap();
        let result = Vault::deploy(
            backbone,
            rectifier,
            &real,
            16, // absurdly small EPC
            CostModel::free(),
            OverBudgetPolicy::Fail,
            SealKey(0),
        );
        assert!(matches!(
            result,
            Err(VaultError::Tee(tee::TeeError::EpcExhausted { .. }))
        ));
    }

    #[test]
    fn set_precision_switches_paths_and_accounting_reversibly() {
        for kind in RectifierKind::ALL {
            let (mut vault, x, _) = toy_vault(kind);
            assert_eq!(vault.precision(), Precision::F32);
            let (f32_labels, _) = vault.infer(&x).unwrap();
            let f32_resident = vault.enclave_in_use_bytes();

            vault.set_precision(Precision::Int8).unwrap();
            assert_eq!(vault.precision(), Precision::Int8);
            assert!(
                vault.enclave_in_use_bytes() < f32_resident,
                "{kind:?}: int8 parameters must shrink the resident set"
            );
            // Idempotent: a second switch is a no-op.
            vault.set_precision(Precision::Int8).unwrap();
            let resident_int8 = vault.enclave_in_use_bytes();
            vault.set_precision(Precision::Int8).unwrap();
            assert_eq!(vault.enclave_in_use_bytes(), resident_int8);

            let (int8_labels, _) = vault.infer(&x).unwrap();
            assert_eq!(
                int8_labels, f32_labels,
                "{kind:?}: int8 labels disagree with f32"
            );

            // Every query path dispatches the quantized model.
            let (node0, _) = vault.infer_node(&x, 0).unwrap();
            assert_eq!(node0, int8_labels[0], "{kind:?}");
            let mut session = vault.open_session();
            let nodes: Vec<usize> = (0..x.rows()).collect();
            let (batched, _) = vault.infer_batch(&mut session, &x, &nodes).unwrap();
            assert_eq!(batched, int8_labels, "{kind:?}");

            // Switching back restores the exact f32 path and ledger.
            vault.set_precision(Precision::F32).unwrap();
            assert_eq!(vault.precision(), Precision::F32);
            assert_eq!(vault.enclave_in_use_bytes(), f32_resident, "{kind:?}");
            let (back, _) = vault.infer(&x).unwrap();
            assert_eq!(back, f32_labels, "{kind:?}");
        }
    }

    #[test]
    fn int8_snapshot_restores_bit_identical_and_seals_smaller() {
        for kind in RectifierKind::ALL {
            let (mut vault, x, _) = toy_vault(kind);
            let f32_snapshot = vault.snapshot();
            vault.set_precision(Precision::Int8).unwrap();
            let snapshot = vault.snapshot();
            assert!(
                snapshot.sealed_nbytes() < f32_snapshot.sealed_nbytes(),
                "{kind:?}: int8 snapshot seals {} bytes, f32 {}",
                snapshot.sealed_nbytes(),
                f32_snapshot.sealed_nbytes()
            );
            let (labels, _) = vault.infer(&x).unwrap();

            let mut replica = Vault::restore(&snapshot, SealKey(7)).unwrap();
            assert_eq!(replica.precision(), Precision::Int8);
            assert_eq!(replica.epoch(), vault.epoch());
            let (replica_labels, _) = replica.infer(&x).unwrap();
            assert_eq!(
                replica_labels, labels,
                "{kind:?}: int8 replica must answer bit-identically"
            );
            // Re-snapshot reads the stored codes, so the replica seals
            // the identical bytes — replicas of replicas stay coherent.
            assert_eq!(replica.snapshot(), snapshot, "{kind:?}");
            // The recovery path preserves the precision too.
            let mut revived = replica.recovery_handle().restore().unwrap();
            assert_eq!(revived.precision(), Precision::Int8);
            let (revived_labels, _) = revived.infer(&x).unwrap();
            assert_eq!(revived_labels, labels, "{kind:?}");
        }
    }
}
