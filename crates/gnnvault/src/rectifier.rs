use crate::VaultError;
use linalg::{ops, CsrMatrix, DenseMatrix, Workspace};
use nn::{loss, Adam, ConvForward, ConvKind, ConvLayer, NnError, QuantizedConvLayer, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The three backbone-to-rectifier communication schemes of Fig. 3.
///
/// Input-wiring rules (reconstructed from the paper's description and
/// the θrec values of Table II; see DESIGN.md):
///
/// - **Parallel**: rectifier layer `i` consumes the concatenation of the
///   previous rectifier output and backbone embedding `i` (layer 0 takes
///   embedding 0 alone). Runs layer-by-layer alongside the backbone.
/// - **Cascaded**: the backbone runs to completion first; rectifier
///   layer 0 consumes the concatenation of *all* backbone embeddings.
/// - **Series**: rectifier layer 0 consumes only the backbone's final
///   node embedding (its last hidden layer — the smallest tap, giving
///   the smallest enclave input and the paper's lowest transfer cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RectifierKind {
    /// Per-layer taps, rectify after every message-passing step.
    Parallel,
    /// One concatenated tap of all backbone embeddings.
    Cascaded,
    /// Single tap of the final backbone embedding.
    Series,
}

impl RectifierKind {
    /// All kinds in the paper's presentation order.
    pub const ALL: [RectifierKind; 3] = [
        RectifierKind::Parallel,
        RectifierKind::Cascaded,
        RectifierKind::Series,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            RectifierKind::Parallel => "parallel",
            RectifierKind::Cascaded => "cascaded",
            RectifierKind::Series => "series",
        }
    }

    /// Indices of the backbone embeddings this scheme transfers into the
    /// enclave, given the backbone layer widths.
    pub fn tap_indices(&self, backbone_dims: &[usize], rectifier_layers: usize) -> Vec<usize> {
        match self {
            RectifierKind::Parallel => (0..rectifier_layers.min(backbone_dims.len())).collect(),
            RectifierKind::Cascaded => (0..backbone_dims.len()).collect(),
            RectifierKind::Series => vec![backbone_dims.len().saturating_sub(2)],
        }
    }
}

/// The private GNN rectifier (§IV-D): a small stack of GCN layers over
/// the *real* adjacency that recalibrates the public backbone's
/// embeddings. Lives inside the enclave after deployment.
///
/// Construct with [`Rectifier::new`], train with [`Rectifier::fit`]
/// (backbone frozen — its embeddings enter as constants), run with
/// [`Rectifier::forward`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rectifier {
    kind: RectifierKind,
    layers: Vec<ConvLayer>,
    conv: ConvKind,
    /// Backbone layer widths this rectifier was wired against.
    backbone_dims: Vec<usize>,
}

/// Forward-pass artifacts: per-layer caches (whose outputs *are* the
/// post-activation tensors — hidden layers come out of the fused
/// bias+ReLU forward already activated, the last layer holds raw
/// logits) plus the owned layer inputs needed for training.
#[derive(Debug, Clone)]
pub struct RectifierForward {
    caches: Vec<ConvForward>,
    /// What each layer consumed: an owned concatenation, or a borrow of
    /// a backbone tap / the previous activation (never a copy).
    inputs: Vec<StoredInput>,
}

/// How a rectifier layer's input is stored in [`RectifierForward`].
///
/// Inputs that alias an existing tensor (a backbone embedding or the
/// previous layer's activation) are recorded as references, so forward
/// passes copy nothing; only genuine concatenations are owned.
#[derive(Debug, Clone)]
enum StoredInput {
    /// A concatenated input that exists nowhere else.
    Owned(DenseMatrix),
    /// Backbone embedding at this index.
    Tap(usize),
    /// The previous rectifier layer's activation.
    Prev,
}

impl StoredInput {
    /// Resolves to the actual tensor, given the embeddings the forward
    /// ran on and the layer caches produced so far.
    fn resolve<'a>(
        &'a self,
        i: usize,
        backbone_embeddings: &'a [DenseMatrix],
        caches: &'a [ConvForward],
    ) -> &'a DenseMatrix {
        match self {
            StoredInput::Owned(m) => m,
            StoredInput::Tap(t) => &backbone_embeddings[*t],
            StoredInput::Prev => caches[i - 1].output(),
        }
    }
}

impl RectifierForward {
    /// Resolves layer `i`'s input against the embeddings it was run on.
    fn input<'a>(&'a self, i: usize, backbone_embeddings: &'a [DenseMatrix]) -> &'a DenseMatrix {
        self.inputs[i].resolve(i, backbone_embeddings, &self.caches)
    }
}

impl RectifierForward {
    /// Number of rectifier layers this forward ran.
    pub fn num_layers(&self) -> usize {
        self.caches.len()
    }

    /// Post-activation output of layer `i` (hidden layers ReLU-ed, last
    /// layer raw logits). A borrow of the layer cache — the fused
    /// forward produces the activation directly, so no copy exists.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_layers()`.
    pub fn activation(&self, i: usize) -> &DenseMatrix {
        self.caches[i].output()
    }

    /// Iterates the per-layer post-activation outputs in order.
    pub fn activations(&self) -> impl Iterator<Item = &DenseMatrix> {
        self.caches.iter().map(ConvForward::output)
    }

    /// Final-layer logits.
    ///
    /// # Panics
    ///
    /// Never in practice: rectifiers always have at least one layer.
    pub fn logits(&self) -> &DenseMatrix {
        self.caches.last().expect("rectifier has layers").output()
    }
}

impl Rectifier {
    /// Builds an untrained rectifier wired for the given backbone widths.
    ///
    /// `channels` are the rectifier layer output widths (ending in the
    /// class count); `backbone_dims` are the backbone layer output
    /// widths in order.
    ///
    /// # Errors
    ///
    /// Returns [`VaultError::InvalidConfig`] when either list is empty,
    /// contains zeros, or (for [`RectifierKind::Parallel`]) the backbone
    /// has fewer layers than the rectifier.
    pub fn new(
        kind: RectifierKind,
        channels: &[usize],
        backbone_dims: &[usize],
        seed: u64,
    ) -> Result<Rectifier, VaultError> {
        Self::new_with_conv(kind, ConvKind::Gcn, channels, backbone_dims, seed)
    }

    /// Builds an untrained rectifier with an explicit convolution
    /// architecture — [`ConvKind::Sage`] and [`ConvKind::Gat`] implement
    /// the paper's §VI future-work extensions.
    ///
    /// For `Sage`, pass the row-normalized adjacency
    /// ([`graph::normalization::row_normalize`]) to [`Rectifier::fit`] /
    /// [`Rectifier::forward`], or use
    /// [`Rectifier::preferred_adjacency`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Rectifier::new`].
    pub fn new_with_conv(
        kind: RectifierKind,
        conv: ConvKind,
        channels: &[usize],
        backbone_dims: &[usize],
        seed: u64,
    ) -> Result<Rectifier, VaultError> {
        if channels.is_empty() || backbone_dims.is_empty() {
            return Err(VaultError::InvalidConfig {
                reason: "rectifier and backbone need at least one layer each".into(),
            });
        }
        if channels.contains(&0) || backbone_dims.contains(&0) {
            return Err(VaultError::InvalidConfig {
                reason: "layer widths must be positive".into(),
            });
        }
        if kind == RectifierKind::Parallel && backbone_dims.len() < channels.len() {
            return Err(VaultError::InvalidConfig {
                reason: format!(
                    "parallel rectifier with {} layers needs a backbone with at least as many (got {})",
                    channels.len(),
                    backbone_dims.len()
                ),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(channels.len());
        for (i, &out) in channels.iter().enumerate() {
            let in_dim = Self::input_dim(kind, channels, backbone_dims, i);
            layers.push(ConvLayer::new(conv, in_dim, out, &mut rng));
        }
        Ok(Rectifier {
            kind,
            layers,
            conv,
            backbone_dims: backbone_dims.to_vec(),
        })
    }

    /// The convolution architecture of this rectifier's layers.
    pub fn conv(&self) -> ConvKind {
        self.conv
    }

    /// Builds the adjacency operator this rectifier's convolution
    /// expects from the real graph: symmetric GCN normalization for
    /// `Gcn`/`Gat`, row normalization for `Sage`.
    pub fn preferred_adjacency(&self, real_graph: &graph::Graph) -> CsrMatrix {
        match self.conv {
            ConvKind::Sage => graph::normalization::row_normalize(real_graph),
            ConvKind::Gcn | ConvKind::Gat => graph::normalization::gcn_normalize(real_graph),
        }
    }

    /// Input width of rectifier layer `i` under the wiring rules.
    fn input_dim(
        kind: RectifierKind,
        channels: &[usize],
        backbone_dims: &[usize],
        i: usize,
    ) -> usize {
        match kind {
            RectifierKind::Parallel => {
                if i == 0 {
                    backbone_dims[0]
                } else {
                    channels[i - 1] + backbone_dims.get(i).copied().unwrap_or(0)
                }
            }
            RectifierKind::Cascaded => {
                if i == 0 {
                    backbone_dims.iter().sum()
                } else {
                    channels[i - 1]
                }
            }
            RectifierKind::Series => {
                if i == 0 {
                    backbone_dims[backbone_dims.len().saturating_sub(2)]
                } else {
                    channels[i - 1]
                }
            }
        }
    }

    /// The communication scheme.
    pub fn kind(&self) -> RectifierKind {
        self.kind
    }

    /// Backbone layer widths this rectifier was wired against
    /// (crate-internal: snapshot encoding).
    pub(crate) fn backbone_dims(&self) -> &[usize] {
        &self.backbone_dims
    }

    /// Borrow of the layer stack (crate-internal: snapshot encoding).
    pub(crate) fn layers(&self) -> &[ConvLayer] {
        &self.layers
    }

    /// Mutable borrow of the layer stack (crate-internal: snapshot
    /// decoding restores parameter values through it).
    pub(crate) fn layers_mut(&mut self) -> &mut [ConvLayer] {
        &mut self.layers
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Trainable parameter count (`θrec` of Table II).
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(ConvLayer::param_count).sum()
    }

    /// Parameter bytes, for enclave memory accounting.
    pub fn nbytes(&self) -> usize {
        self.layers.iter().map(ConvLayer::nbytes).sum()
    }

    /// Output widths of each layer.
    pub fn channel_dims(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.out_dim()).collect()
    }

    /// Input width of each layer (drives per-layer activation memory).
    pub fn input_dims(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.in_dim()).collect()
    }

    /// Indices of the backbone embeddings this rectifier consumes — the
    /// exact tensors that must cross into the enclave.
    pub fn tap_indices(&self) -> Vec<usize> {
        self.kind
            .tap_indices(&self.backbone_dims, self.layers.len())
    }

    /// Builds the input to layer `i` from backbone taps and the previous
    /// activation, following the wiring rules. Inputs that alias an
    /// existing tensor are recorded as [`StoredInput::Tap`]/
    /// [`StoredInput::Prev`] (no copy); concatenations draw their
    /// buffer from `ws`.
    fn layer_input(
        &self,
        i: usize,
        backbone_embeddings: &[DenseMatrix],
        prev: Option<&DenseMatrix>,
        ws: &mut Workspace,
    ) -> Result<StoredInput, VaultError> {
        let input = match self.kind {
            RectifierKind::Parallel => {
                if i == 0 {
                    StoredInput::Tap(0)
                } else {
                    let prev = prev.expect("layer > 0 has a previous activation");
                    match backbone_embeddings.get(i) {
                        Some(emb) => {
                            let mut concat =
                                ws.take_for_overwrite(prev.rows(), prev.cols() + emb.cols());
                            DenseMatrix::hconcat_into(&[prev, emb], &mut concat)?;
                            StoredInput::Owned(concat)
                        }
                        None => StoredInput::Prev,
                    }
                }
            }
            RectifierKind::Cascaded => {
                if i == 0 {
                    if backbone_embeddings.len() == 1 {
                        StoredInput::Tap(0)
                    } else {
                        let refs: Vec<&DenseMatrix> = backbone_embeddings.iter().collect();
                        let rows = refs[0].rows();
                        let cols = refs.iter().map(|m| m.cols()).sum();
                        let mut concat = ws.take_for_overwrite(rows, cols);
                        DenseMatrix::hconcat_into(&refs, &mut concat)?;
                        StoredInput::Owned(concat)
                    }
                } else {
                    StoredInput::Prev
                }
            }
            RectifierKind::Series => {
                if i == 0 {
                    let tap = self.backbone_dims.len().saturating_sub(2);
                    StoredInput::Tap(tap.min(backbone_embeddings.len() - 1))
                } else {
                    StoredInput::Prev
                }
            }
        };
        Ok(input)
    }

    /// Forward pass over the real adjacency, given the backbone's
    /// per-layer embeddings.
    ///
    /// # Errors
    ///
    /// Returns [`VaultError::Nn`] when the embeddings do not match the
    /// wiring this rectifier was built for.
    pub fn forward(
        &self,
        real_adj: &CsrMatrix,
        backbone_embeddings: &[DenseMatrix],
    ) -> Result<RectifierForward, VaultError> {
        self.forward_ws(real_adj, backbone_embeddings, &mut Workspace::new())
    }

    /// Forward pass drawing every concatenation, projection, and
    /// activation buffer from `ws`; [`Rectifier::fit`] recycles them
    /// across epochs so the training loop allocates nothing in steady
    /// state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Rectifier::forward`].
    pub fn forward_ws(
        &self,
        real_adj: &CsrMatrix,
        backbone_embeddings: &[DenseMatrix],
        ws: &mut Workspace,
    ) -> Result<RectifierForward, VaultError> {
        self.forward_with(backbone_embeddings, ws, |i, input, fuse_relu, ws| {
            self.layers[i].forward_fused(real_adj, input, fuse_relu, ws)
        })
    }

    /// Forward pass substituting int8 quantized layers for the f32
    /// stack — identical wiring, tap resolution, and fused-ReLU
    /// schedule; only each layer's projection GEMM differs (see
    /// [`nn::quantized`]). Crate-internal: the vault's int8 serving
    /// path calls this with the quantized model it built at
    /// `set_precision` time.
    pub(crate) fn forward_quantized(
        &self,
        qlayers: &[QuantizedConvLayer],
        real_adj: &CsrMatrix,
        backbone_embeddings: &[DenseMatrix],
    ) -> Result<RectifierForward, VaultError> {
        if qlayers.len() != self.layers.len() {
            return Err(VaultError::InvalidConfig {
                reason: format!(
                    "quantized model has {} layers, rectifier has {}",
                    qlayers.len(),
                    self.layers.len()
                ),
            });
        }
        self.forward_with(
            backbone_embeddings,
            &mut Workspace::new(),
            |i, input, fuse_relu, ws| qlayers[i].forward_fused(real_adj, input, fuse_relu, ws),
        )
    }

    /// The shared forward loop: wiring (`layer_input`) and the fused
    /// bias/ReLU schedule live here exactly once, with the per-layer
    /// forward injected — so the f32 and quantized paths cannot drift.
    fn forward_with<F>(
        &self,
        backbone_embeddings: &[DenseMatrix],
        ws: &mut Workspace,
        mut forward_layer: F,
    ) -> Result<RectifierForward, VaultError>
    where
        F: FnMut(usize, &DenseMatrix, bool, &mut Workspace) -> Result<ConvForward, NnError>,
    {
        if backbone_embeddings.len() != self.backbone_dims.len() {
            return Err(VaultError::InvalidConfig {
                reason: format!(
                    "expected {} backbone embeddings, got {}",
                    self.backbone_dims.len(),
                    backbone_embeddings.len()
                ),
            });
        }
        let last = self.layers.len() - 1;
        let mut caches: Vec<ConvForward> = Vec::with_capacity(self.layers.len());
        let mut inputs = Vec::with_capacity(self.layers.len());
        for i in 0..self.layers.len() {
            let prev = caches.last().map(ConvForward::output);
            let stored = self.layer_input(i, backbone_embeddings, prev, ws)?;
            let cache = {
                let input = stored.resolve(i, backbone_embeddings, &caches);
                // Hidden layers fuse bias + ReLU into the layer's
                // output epilogue, so the cached output *is* the
                // activation — no copy, no separate ReLU pass.
                forward_layer(i, input, i != last, ws)?
            };
            caches.push(cache);
            inputs.push(stored);
        }
        Ok(RectifierForward { caches, inputs })
    }

    /// Quantizes every convolution for int8 serving (crate-internal:
    /// the vault builds its quantized model through this).
    pub(crate) fn quantize_layers(&self) -> Vec<QuantizedConvLayer> {
        self.layers
            .iter()
            .map(QuantizedConvLayer::quantize)
            .collect()
    }

    /// Trains the rectifier on frozen backbone embeddings with masked
    /// cross-entropy (§IV-D: "we freeze the pre-trained GNN backbone and
    /// adjust the rectifier parameters").
    ///
    /// # Errors
    ///
    /// Propagates wiring and label/mask failures.
    pub fn fit(
        &mut self,
        real_adj: &CsrMatrix,
        backbone_embeddings: &[DenseMatrix],
        labels: &[usize],
        train_mask: &[usize],
        cfg: &TrainConfig,
    ) -> Result<nn::TrainReport, VaultError> {
        let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
        let mut final_loss = f32::NAN;
        // Shared across epochs: epoch N's activations, concatenations,
        // and gradients become epoch N+1's buffers.
        let mut ws = Workspace::new();
        for _ in 0..cfg.epochs {
            let fwd = self.forward_ws(real_adj, backbone_embeddings, &mut ws)?;
            let (loss_value, grad) = loss::masked_cross_entropy(fwd.logits(), labels, train_mask)?;
            final_loss = loss_value;

            for layer in &mut self.layers {
                for param in layer.params_mut() {
                    param.zero_grad();
                }
            }
            let mut d = grad;
            for i in (0..self.layers.len()).rev() {
                let d_input = {
                    let input = fwd.input(i, backbone_embeddings);
                    self.layers[i].backward_ws(&fwd.caches[i], input, real_adj, &d, &mut ws)?
                };
                if i > 0 {
                    // Keep only the slice of the gradient that flows into
                    // the previous rectifier layer; gradients w.r.t. the
                    // frozen backbone embeddings are discarded.
                    let prev_width = self.layers[i - 1].out_dim();
                    let d_prev = d_input.slice_cols(0, prev_width)?;
                    let next = ops::relu_backward(fwd.caches[i - 1].output(), &d_prev);
                    ws.give(d_input);
                    ws.give(d_prev);
                    ws.give(std::mem::replace(&mut d, next));
                } else {
                    ws.give(d_input);
                }
            }
            ws.give(d);

            opt.begin_step();
            for layer in &mut self.layers {
                for param in layer.params_mut() {
                    opt.update(param);
                }
            }

            // Recycle this epoch's tensors.
            for cache in fwd.caches {
                for buf in cache.into_buffers() {
                    ws.give(buf);
                }
            }
            for input in fwd.inputs {
                if let StoredInput::Owned(m) = input {
                    ws.give(m);
                }
            }
        }
        let fwd = self.forward_ws(real_adj, backbone_embeddings, &mut ws)?;
        let train_accuracy = loss::masked_accuracy(fwd.logits(), labels, train_mask)?;
        Ok(nn::TrainReport {
            final_loss,
            train_accuracy,
            epochs: cfg.epochs,
        })
    }

    /// Predicted classes (argmax of rectified logits).
    ///
    /// # Errors
    ///
    /// Propagates wiring failures.
    pub fn predict(
        &self,
        real_adj: &CsrMatrix,
        backbone_embeddings: &[DenseMatrix],
    ) -> Result<Vec<usize>, VaultError> {
        Ok(ops::argmax_rows(
            self.forward(real_adj, backbone_embeddings)?.logits(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::{normalization, Graph};

    /// Backbone dims (8, 4, C=2), rectifier channels (6, 4, 2).
    fn fake_embeddings(n: usize) -> Vec<DenseMatrix> {
        let mut state = 5u64;
        let mut gen = |rows: usize, cols: usize| {
            DenseMatrix::from_fn(rows, cols, |_, _| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 100) as f32 / 100.0
            })
        };
        vec![gen(n, 8), gen(n, 4), gen(n, 2)]
    }

    fn real_adj(n: usize) -> CsrMatrix {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        normalization::gcn_normalize(&Graph::from_edges(n, &edges).unwrap())
    }

    #[test]
    fn input_dims_match_wiring_rules() {
        let bb = [8usize, 4, 2];
        let ch = [6usize, 4, 2];
        let par = Rectifier::new(RectifierKind::Parallel, &ch, &bb, 0).unwrap();
        assert_eq!(par.input_dims(), vec![8, 6 + 4, 4 + 2]);
        let cas = Rectifier::new(RectifierKind::Cascaded, &ch, &bb, 0).unwrap();
        assert_eq!(cas.input_dims(), vec![8 + 4 + 2, 6, 4]);
        let ser = Rectifier::new(RectifierKind::Series, &ch, &bb, 0).unwrap();
        assert_eq!(ser.input_dims(), vec![4, 6, 4]);
    }

    #[test]
    fn tap_indices_match_fig3() {
        let bb = [8usize, 4, 2];
        let par = Rectifier::new(RectifierKind::Parallel, &[6, 4, 2], &bb, 0).unwrap();
        assert_eq!(par.tap_indices(), vec![0, 1, 2]);
        let cas = Rectifier::new(RectifierKind::Cascaded, &[6, 4, 2], &bb, 0).unwrap();
        assert_eq!(cas.tap_indices(), vec![0, 1, 2]);
        let ser = Rectifier::new(RectifierKind::Series, &[6, 4, 2], &bb, 0).unwrap();
        assert_eq!(ser.tap_indices(), vec![1]);
        // A parallel rectifier shorter than the backbone taps a prefix.
        let deep_bb = [16usize, 8, 4, 2, 2];
        let par = Rectifier::new(RectifierKind::Parallel, &[6, 4, 2], &deep_bb, 0).unwrap();
        assert_eq!(par.tap_indices(), vec![0, 1, 2]);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Rectifier::new(RectifierKind::Parallel, &[], &[4], 0).is_err());
        assert!(Rectifier::new(RectifierKind::Parallel, &[4], &[], 0).is_err());
        assert!(Rectifier::new(RectifierKind::Parallel, &[4, 0], &[4, 4], 0).is_err());
        // Parallel with more rectifier layers than backbone layers.
        assert!(Rectifier::new(RectifierKind::Parallel, &[4, 4, 4], &[8, 2], 0).is_err());
        // Cascaded/series tolerate that.
        assert!(Rectifier::new(RectifierKind::Cascaded, &[4, 4, 4], &[8, 2], 0).is_ok());
        assert!(Rectifier::new(RectifierKind::Series, &[4, 4, 4], &[8, 2], 0).is_ok());
    }

    #[test]
    fn forward_shapes_for_all_kinds() {
        let n = 10;
        let embs = fake_embeddings(n);
        let adj = real_adj(n);
        for kind in RectifierKind::ALL {
            let rect = Rectifier::new(kind, &[6, 4, 2], &[8, 4, 2], 1).unwrap();
            let fwd = rect.forward(&adj, &embs).unwrap();
            assert_eq!(fwd.num_layers(), 3, "{kind:?}");
            assert_eq!(fwd.logits().shape(), (n, 2), "{kind:?}");
        }
    }

    #[test]
    fn forward_rejects_wrong_embedding_count() {
        let n = 6;
        let embs = fake_embeddings(n);
        let adj = real_adj(n);
        let rect = Rectifier::new(RectifierKind::Series, &[4, 2], &[8, 4, 2], 0).unwrap();
        assert!(rect.forward(&adj, &embs[..2]).is_err());
    }

    #[test]
    fn fit_reduces_loss_on_separable_toy() {
        // Two chain communities; labels recoverable from the real graph.
        let n = 12;
        let mut edges: Vec<(usize, usize)> = (0..5).map(|i| (i, i + 1)).collect();
        edges.extend((6..11).map(|i| (i, i + 1)));
        let g = Graph::from_edges(n, &edges).unwrap();
        let adj = normalization::gcn_normalize(&g);
        let labels: Vec<usize> = (0..n).map(|i| usize::from(i >= 6)).collect();
        let mask: Vec<usize> = vec![0, 1, 6, 7];
        // Weak backbone embeddings: noisy versions of the label.
        let mut state = 11u64;
        let emb = DenseMatrix::from_fn(n, 4, |r, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (if r >= 6 { 1.0 } else { 0.0 }) + ((state % 100) as f32 / 60.0)
        });
        let logits_emb = DenseMatrix::zeros(n, 2);
        let embs = vec![emb, logits_emb];

        let mut rect = Rectifier::new(RectifierKind::Series, &[8, 2], &[4, 2], 3).unwrap();
        let cfg = TrainConfig {
            epochs: 120,
            lr: 0.05,
            weight_decay: 0.0,
            dropout: 0.0,
            seed: 0,
        };
        let report = rect.fit(&adj, &embs, &labels, &mask, &cfg).unwrap();
        assert!(report.train_accuracy > 0.9, "acc {}", report.train_accuracy);
        let preds = rect.predict(&adj, &embs).unwrap();
        let acc = metrics::accuracy(&preds, &labels).unwrap();
        assert!(acc > 0.8, "full acc {acc}");
    }

    /// Accesses the first layer's weight for the gradient check below.
    fn first_weight(rect: &mut Rectifier) -> &mut nn::Param {
        match &mut rect.layers[0] {
            ConvLayer::Gcn(l) => l.weight_mut(),
            ConvLayer::Sage(l) => l.weight_mut(),
            ConvLayer::Gat(l) => l.weight_mut(),
        }
    }

    #[test]
    fn parallel_gradient_matches_finite_differences() {
        // End-to-end gradient check through the concat wiring, using
        // fit's own backward path via a single zero-lr epoch.
        for conv in [ConvKind::Gcn, ConvKind::Sage, ConvKind::Gat] {
            let n = 8;
            let embs = fake_embeddings(n);
            let adj = real_adj(n);
            let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
            let mask: Vec<usize> = (0..n).collect();
            let mut rect =
                Rectifier::new_with_conv(RectifierKind::Parallel, conv, &[6, 4, 2], &[8, 4, 2], 2)
                    .unwrap();

            // One epoch with lr = 0 leaves weights unchanged but fills
            // the gradient accumulators through fit's backward pass.
            let zero_lr = TrainConfig {
                epochs: 1,
                lr: 0.0,
                weight_decay: 0.0,
                dropout: 0.0,
                seed: 0,
            };
            rect.fit(&adj, &embs, &labels, &mask, &zero_lr).unwrap();
            let analytic = first_weight(&mut rect).grad.get(0, 0);

            let eps = 1e-3f32;
            let orig = first_weight(&mut rect).value.get(0, 0);
            let loss_at = |r: &Rectifier| {
                let fwd = r.forward(&adj, &embs).unwrap();
                loss::masked_cross_entropy(fwd.logits(), &labels, &mask)
                    .unwrap()
                    .0
            };
            first_weight(&mut rect).value.set(0, 0, orig + eps);
            let plus = loss_at(&rect);
            first_weight(&mut rect).value.set(0, 0, orig - eps);
            let minus = loss_at(&rect);
            first_weight(&mut rect).value.set(0, 0, orig);
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 2e-2 * numeric.abs().max(0.5),
                "{conv:?}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn sage_and_gat_rectifiers_train() {
        let n = 12;
        let mut edges: Vec<(usize, usize)> = (0..5).map(|i| (i, i + 1)).collect();
        edges.extend((6..11).map(|i| (i, i + 1)));
        let g = Graph::from_edges(n, &edges).unwrap();
        let labels: Vec<usize> = (0..n).map(|i| usize::from(i >= 6)).collect();
        let mask: Vec<usize> = vec![0, 1, 6, 7];
        let mut state = 11u64;
        let emb = DenseMatrix::from_fn(n, 4, |r, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (if r >= 6 { 1.0 } else { 0.0 }) + ((state % 100) as f32 / 60.0)
        });
        let embs = vec![emb, DenseMatrix::zeros(n, 2)];
        let cfg = TrainConfig {
            epochs: 150,
            lr: 0.05,
            weight_decay: 0.0,
            dropout: 0.0,
            seed: 0,
        };
        for conv in [ConvKind::Sage, ConvKind::Gat] {
            let mut rect =
                Rectifier::new_with_conv(RectifierKind::Series, conv, &[8, 2], &[4, 2], 3).unwrap();
            assert_eq!(rect.conv(), conv);
            let adj = rect.preferred_adjacency(&g);
            let report = rect.fit(&adj, &embs, &labels, &mask, &cfg).unwrap();
            assert!(
                report.train_accuracy > 0.9,
                "{conv:?} train acc {}",
                report.train_accuracy
            );
            let preds = rect.predict(&adj, &embs).unwrap();
            let acc = metrics::accuracy(&preds, &labels).unwrap();
            assert!(acc > 0.7, "{conv:?} full acc {acc}");
        }
    }

    #[test]
    fn param_counts_scale_with_wiring() {
        let bb = [8usize, 4, 2];
        let ch = [6usize, 4, 2];
        let par = Rectifier::new(RectifierKind::Parallel, &ch, &bb, 0).unwrap();
        let cas = Rectifier::new(RectifierKind::Cascaded, &ch, &bb, 0).unwrap();
        let ser = Rectifier::new(RectifierKind::Series, &ch, &bb, 0).unwrap();
        // Series has the smallest input space, hence the fewest params.
        assert!(ser.param_count() < par.param_count());
        assert!(ser.param_count() < cas.param_count());
        assert_eq!(ser.nbytes(), ser.param_count() * 4);
    }
}
