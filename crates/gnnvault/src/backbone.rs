use crate::{SubstituteKind, VaultError};
use graph::{normalization, Graph};
use linalg::{CsrMatrix, DenseMatrix};
use nn::{GcnNetwork, MlpNetwork, QuantizedGcnNetwork, QuantizedMlpNetwork, TrainConfig};
use serde::{Deserialize, Serialize};

/// The public backbone model deployed in the untrusted world (§IV-C).
///
/// Either a GCN trained on a substitute graph, or — for the Table III
/// "DNN" baseline — an MLP that ignores graph structure entirely. The
/// backbone (and, for GCN variants, its substitute graph) is what an
/// attacker with full control of the normal world can inspect.
///
/// # Examples
///
/// See [`crate::pipeline::train`] for the usual entry point; direct use:
///
/// ```
/// use gnnvault::{Backbone, SubstituteKind};
/// use linalg::DenseMatrix;
/// use nn::TrainConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = DenseMatrix::from_rows(&[
///     &[1.0, 0.0], &[0.9, 0.0], &[0.0, 1.0], &[0.0, 0.8],
/// ])?;
/// let labels = vec![0, 0, 1, 1];
/// let cfg = TrainConfig { epochs: 20, ..Default::default() };
/// let backbone = Backbone::train(
///     &x, &labels, &[0, 2], SubstituteKind::Knn { k: 1 },
///     &[8, 2], 3, &cfg, 0,
/// )?;
/// let embeddings = backbone.embeddings(&x)?;
/// assert_eq!(embeddings.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Backbone {
    /// GCN over a substitute adjacency.
    Gcn {
        /// The trained network.
        network: GcnNetwork,
        /// The public substitute graph (deployed alongside the model).
        substitute_graph: Graph,
        /// Normalized substitute adjacency used at inference time.
        substitute_adj: CsrMatrix,
        /// How the substitute was constructed (metadata for reports).
        kind: SubstituteKind,
    },
    /// Structure-free MLP (Table III "DNN" backbone).
    Mlp {
        /// The trained network.
        network: MlpNetwork,
    },
}

impl Backbone {
    /// Trains a backbone of the given `kind` on public features and the
    /// substitute graph it induces.
    ///
    /// `real_edges` is used only for density matching of
    /// [`SubstituteKind::CosineBudget`] / [`SubstituteKind::Random`].
    ///
    /// # Errors
    ///
    /// Propagates substitute-construction and training failures.
    #[allow(clippy::too_many_arguments)]
    pub fn train(
        features: &DenseMatrix,
        labels: &[usize],
        train_mask: &[usize],
        kind: SubstituteKind,
        channels: &[usize],
        real_edges: usize,
        cfg: &TrainConfig,
        seed: u64,
    ) -> Result<Backbone, VaultError> {
        match kind.build(features, real_edges, seed)? {
            None => {
                let mut network = MlpNetwork::new(features.cols(), channels, seed)?;
                network.fit(features, labels, train_mask, cfg)?;
                Ok(Backbone::Mlp { network })
            }
            Some(substitute_graph) => {
                let substitute_adj = normalization::gcn_normalize(&substitute_graph);
                let mut network = GcnNetwork::new(features.cols(), channels, seed)?;
                network.fit(&substitute_adj, features, labels, train_mask, cfg)?;
                Ok(Backbone::Gcn {
                    network,
                    substitute_graph,
                    substitute_adj,
                    kind,
                })
            }
        }
    }

    /// Per-layer embeddings on the *public* data path (substitute
    /// adjacency for GCN backbones, none for the MLP) — the intermediate
    /// data visible to the attacker and consumed by the rectifier.
    ///
    /// # Errors
    ///
    /// Returns [`VaultError::Nn`] on shape inconsistencies.
    pub fn embeddings(&self, features: &DenseMatrix) -> Result<Vec<DenseMatrix>, VaultError> {
        Ok(match self {
            Backbone::Gcn {
                network,
                substitute_adj,
                ..
            } => network.forward_embeddings(substitute_adj, features)?,
            Backbone::Mlp { network } => network.forward_embeddings(features)?,
        })
    }

    /// Final-layer logits on the public data path.
    ///
    /// # Errors
    ///
    /// Returns [`VaultError::Nn`] on shape inconsistencies.
    pub fn logits(&self, features: &DenseMatrix) -> Result<DenseMatrix, VaultError> {
        Ok(self
            .embeddings(features)?
            .pop()
            .expect("backbone has at least one layer"))
    }

    /// Predicted classes on the public path (the low-accuracy `pbb`
    /// output an attacker could extract).
    ///
    /// # Errors
    ///
    /// Returns [`VaultError::Nn`] on shape inconsistencies.
    pub fn predict(&self, features: &DenseMatrix) -> Result<Vec<usize>, VaultError> {
        Ok(linalg::ops::argmax_rows(&self.logits(features)?))
    }

    /// Output widths of every layer.
    pub fn channel_dims(&self) -> Vec<usize> {
        match self {
            Backbone::Gcn { network, .. } => network.channel_dims(),
            Backbone::Mlp { network } => network.channel_dims(),
        }
    }

    /// Trainable parameter count (`θbb`).
    pub fn param_count(&self) -> usize {
        match self {
            Backbone::Gcn { network, .. } => network.param_count(),
            Backbone::Mlp { network } => network.param_count(),
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        match self {
            Backbone::Gcn { network, .. } => network.num_layers(),
            Backbone::Mlp { network } => network.num_layers(),
        }
    }

    /// The substitute graph, when one exists.
    pub fn substitute_graph(&self) -> Option<&Graph> {
        match self {
            Backbone::Gcn {
                substitute_graph, ..
            } => Some(substitute_graph),
            Backbone::Mlp { .. } => None,
        }
    }

    /// Quantizes the network half for int8 serving; the substitute
    /// graph/adjacency stay with the f32 backbone (the quantized
    /// forward borrows them through [`Backbone::embeddings_quantized`]).
    pub(crate) fn quantize_network(&self) -> QuantizedBackboneNet {
        match self {
            Backbone::Gcn { network, .. } => {
                QuantizedBackboneNet::Gcn(QuantizedGcnNetwork::quantize(network))
            }
            Backbone::Mlp { network } => {
                QuantizedBackboneNet::Mlp(QuantizedMlpNetwork::quantize(network))
            }
        }
    }

    /// [`Backbone::embeddings`] through a quantized network: the same
    /// public data path (substitute adjacency for GCN, none for MLP)
    /// with int8 projections.
    ///
    /// # Errors
    ///
    /// Returns [`VaultError::Nn`] on shape inconsistencies and
    /// [`VaultError::InvalidConfig`] if `net` was quantized from a
    /// different backbone architecture.
    pub(crate) fn embeddings_quantized(
        &self,
        net: &QuantizedBackboneNet,
        features: &DenseMatrix,
    ) -> Result<Vec<DenseMatrix>, VaultError> {
        Ok(match (self, net) {
            (Backbone::Gcn { substitute_adj, .. }, QuantizedBackboneNet::Gcn(q)) => {
                q.forward_embeddings(substitute_adj, features)?
            }
            (Backbone::Mlp { .. }, QuantizedBackboneNet::Mlp(q)) => {
                q.forward_embeddings(features)?
            }
            _ => {
                return Err(VaultError::InvalidConfig {
                    reason: "quantized network architecture disagrees with the backbone".into(),
                })
            }
        })
    }
}

/// The int8 network half of a quantized backbone (crate-internal): a
/// quantized mirror of the [`Backbone`]'s network, run against the f32
/// backbone's own substitute adjacency.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum QuantizedBackboneNet {
    /// Quantized GCN stack.
    Gcn(QuantizedGcnNetwork),
    /// Quantized MLP stack.
    Mlp(QuantizedMlpNetwork),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (DenseMatrix, Vec<usize>, Vec<usize>) {
        let x = DenseMatrix::from_rows(&[
            &[1.0, 0.0],
            &[0.9, 0.1],
            &[1.0, 0.1],
            &[0.0, 1.0],
            &[0.1, 0.9],
            &[0.0, 1.1],
        ])
        .unwrap();
        let labels = vec![0, 0, 0, 1, 1, 1];
        let train = vec![0, 1, 3, 4];
        (x, labels, train)
    }

    fn cfg() -> TrainConfig {
        TrainConfig {
            epochs: 60,
            lr: 0.05,
            weight_decay: 0.0,
            dropout: 0.0,
            seed: 0,
        }
    }

    #[test]
    fn gcn_backbone_trains_and_predicts() {
        let (x, labels, train) = toy();
        let bb = Backbone::train(
            &x,
            &labels,
            &train,
            SubstituteKind::Knn { k: 2 },
            &[8, 2],
            6,
            &cfg(),
            1,
        )
        .unwrap();
        assert!(bb.substitute_graph().is_some());
        assert_eq!(bb.num_layers(), 2);
        let preds = bb.predict(&x).unwrap();
        assert_eq!(preds.len(), 6);
        // Features are clean, so the KNN backbone should get train nodes right.
        assert_eq!(preds[0], 0);
        assert_eq!(preds[3], 1);
    }

    #[test]
    fn mlp_backbone_has_no_graph() {
        let (x, labels, train) = toy();
        let bb = Backbone::train(
            &x,
            &labels,
            &train,
            SubstituteKind::Dnn,
            &[8, 2],
            6,
            &cfg(),
            1,
        )
        .unwrap();
        assert!(bb.substitute_graph().is_none());
        let embs = bb.embeddings(&x).unwrap();
        assert_eq!(embs.len(), 2);
        assert_eq!(embs[1].shape(), (6, 2));
    }

    #[test]
    fn param_count_is_positive_and_matches_channels() {
        let (x, labels, train) = toy();
        let bb = Backbone::train(
            &x,
            &labels,
            &train,
            SubstituteKind::Knn { k: 1 },
            &[4, 2],
            6,
            &cfg(),
            0,
        )
        .unwrap();
        assert_eq!(bb.param_count(), 2 * 4 + 4 + 4 * 2 + 2);
    }
}
