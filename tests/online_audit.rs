//! End-to-end online-audit tests: the link-stealing attack driven
//! through a real serving engine must observe exactly the offline
//! vault-surface leakage when nothing is blocked, and must be caught by
//! the sentinel's default thresholds when enforcement is on.

use attacks::{surface, LinkStealingAttack, OnlineLinkAudit, SimilarityMetric};
use datasets::{DatasetSpec, SyntheticPlanetoid};
use gnnvault::{pipeline, ModelConfig, RectifierKind, SubstituteKind};
use serve::{ClientId, SentinelConfig, SentinelMode, SentinelVerdict, ServeConfig, ServingEngine};

fn audit_fixture() -> (
    gnnvault::Vault,
    datasets::CitationDataset,
    Vec<linalg::DenseMatrix>,
) {
    let data = SyntheticPlanetoid::new(DatasetSpec::CORA)
        .scale(0.03)
        .seed(5)
        .generate()
        .expect("generation");
    let cfg = pipeline::PipelineConfig {
        model: ModelConfig::m1(data.num_classes),
        substitute: SubstituteKind::Knn { k: 2 },
        rectifier: RectifierKind::Series,
        epochs: 30,
        train_original: false,
        ..Default::default()
    };
    let trained = pipeline::train(&data, &cfg).expect("training");
    let m_gv = surface::gnnvault_surface(&trained.backbone, &data.features).expect("Mgv");
    let vault = pipeline::deploy(trained, &data).expect("deployment");
    (vault, data, m_gv)
}

fn serve_config(mode: SentinelMode, shards: usize) -> ServeConfig {
    ServeConfig {
        sentinel: SentinelConfig {
            mode,
            ..SentinelConfig::default()
        },
        shards,
        ..ServeConfig::default()
    }
}

#[test]
fn observed_online_attack_matches_the_offline_surface_exactly() {
    let (vault, data, m_gv) = audit_fixture();
    let attack = LinkStealingAttack::new(SimilarityMetric::Cosine).with_seed(2);
    let offline_auc = attack.run(&data.graph, &m_gv).expect("offline attack");

    let engine = ServingEngine::start(
        vault,
        data.features.clone(),
        serve_config(SentinelMode::Observe, 2),
    )
    .expect("engine");
    let outcome = OnlineLinkAudit::new(attack)
        .run(&engine.handle(), &data.graph, &m_gv)
        .expect("audit");
    let (_, stats) = engine.shutdown();

    // Shadow mode answers everything, so the online audit scores the
    // identical probe set the offline attack samples: the AUCs are not
    // merely close, they are equal.
    assert_eq!(outcome.pairs_answered, outcome.pairs_planned);
    assert_eq!(outcome.completion(), 1.0);
    assert!(!outcome.quarantined);
    assert_eq!(outcome.rate_limited, 0);
    assert_eq!(outcome.auc, Some(offline_auc));
    assert!(outcome.label_agreement_auc.is_some());

    // The probe stream is attributed and visible in the serving stats.
    let session = stats
        .sentinel
        .sessions
        .iter()
        .find(|s| s.client == ClientId(0xA0D17))
        .expect("audit session observed");
    assert_eq!(session.requests, outcome.pairs_planned as u64);
    assert_eq!(stats.sentinel.rate_limited_requests, 0);
    assert_eq!(stats.sentinel.quarantined_requests, 0);
}

#[test]
fn enforced_sentinel_quarantines_the_probe_stream_at_default_thresholds() {
    let (vault, data, m_gv) = audit_fixture();
    let attack = LinkStealingAttack::new(SimilarityMetric::Cosine).with_seed(2);
    let engine = ServingEngine::start(
        vault,
        data.features.clone(),
        serve_config(SentinelMode::Enforce, 1),
    )
    .expect("engine");
    let outcome = OnlineLinkAudit::new(attack)
        .run(&engine.handle(), &data.graph, &m_gv)
        .expect("audit");
    let (_, stats) = engine.shutdown();

    assert!(
        outcome.quarantined,
        "random pair probing must trip the default thresholds: {outcome:?}"
    );
    assert!(
        outcome.pairs_answered < outcome.pairs_planned,
        "quarantine must cost the attacker probes"
    );
    let session = stats
        .sentinel
        .sessions
        .iter()
        .find(|s| s.client == ClientId(0xA0D17))
        .expect("audit session observed");
    assert_eq!(session.verdict, SentinelVerdict::Quarantined);
    assert_eq!(stats.sentinel.quarantined_sessions, 1);
}
