//! Security-property integration tests: the guarantees §IV claims,
//! checked end to end — isolation of the private graph, tamper-evident
//! sealing, label-only output, and attack resistance.

use attacks::{surface, LinkStealingAttack, SimilarityMetric};
use datasets::{DatasetSpec, SyntheticPlanetoid};
use gnnvault::{pipeline, ModelConfig, RectifierKind, SubstituteKind};
use tee::{SealKey, Sealed, TeeError};

fn trained_pair() -> (pipeline::TrainedGnnVault, datasets::CitationDataset) {
    let data = SyntheticPlanetoid::new(DatasetSpec::CORA)
        .scale(0.06)
        .seed(17)
        .generate()
        .expect("generation");
    let cfg = pipeline::PipelineConfig {
        model: ModelConfig::custom("sec", &[32, 16, 7], &[16, 8, 7]),
        substitute: SubstituteKind::Knn { k: 2 },
        rectifier: RectifierKind::Parallel,
        epochs: 100,
        lr: 0.02,
        weight_decay: 5e-4,
        dropout: 0.2,
        seed: 1,
        train_original: true,
    };
    let trained = pipeline::train(&data, &cfg).expect("training");
    (trained, data)
}

#[test]
fn untrusted_world_leaks_no_more_than_feature_baseline() {
    let (trained, data) = trained_pair();
    let m_org = surface::original_surface(
        trained.original.as_ref().expect("reference"),
        &data.features,
    )
    .expect("Morg");
    let m_gv = surface::gnnvault_surface(&trained.backbone, &data.features).expect("Mgv");

    for metric in [SimilarityMetric::Cosine, SimilarityMetric::Euclidean] {
        let attack = LinkStealingAttack::new(metric).with_seed(2);
        let auc_org = attack.run(&data.graph, &m_org).expect("attack");
        let auc_gv = attack.run(&data.graph, &m_gv).expect("attack");
        assert!(
            auc_gv < auc_org - 0.05,
            "{metric:?}: GNNVault surface ({auc_gv:.3}) must leak less than \
             the unprotected model ({auc_org:.3})"
        );
    }
}

#[test]
fn rectifier_activations_would_leak_if_exposed() {
    // The ablation behind the one-way-channel rule (§IV-B): rectifier
    // activations are computed with the real adjacency, so if they ever
    // crossed back to the untrusted world the attack would succeed again.
    let (trained, data) = trained_pair();
    let real_adj = graph::normalization::gcn_normalize(&data.graph);
    let embs = trained
        .backbone
        .embeddings(&data.features)
        .expect("embeddings");
    let rect_fwd = trained
        .rectifier
        .forward(&real_adj, &embs)
        .expect("rectifier forward");

    let attack = LinkStealingAttack::new(SimilarityMetric::Cosine).with_seed(2);
    let auc_backbone = attack
        .run(
            &data.graph,
            &surface::gnnvault_surface(&trained.backbone, &data.features).expect("Mgv"),
        )
        .expect("attack");
    let rect_activations: Vec<_> = rect_fwd.activations().cloned().collect();
    let auc_rectifier = attack.run(&data.graph, &rect_activations).expect("attack");
    assert!(
        auc_rectifier > auc_backbone + 0.05,
        "rectifier activations ({auc_rectifier:.3}) carry more edge signal than the \
         public surface ({auc_backbone:.3}) — which is why they must stay sealed"
    );
}

#[test]
fn vault_output_is_label_only() {
    let (trained, data) = trained_pair();
    let mut vault = pipeline::deploy(trained, &data).expect("deployment");
    let (labels, _) = vault.infer(&data.features).expect("inference");
    // The public type of the egress is ClassLabel (a bare usize); its
    // value range is the class space, not a logit vector.
    for l in &labels {
        assert!(l.0 < data.num_classes);
    }
}

#[test]
fn sealed_artifacts_resist_tampering_and_wrong_keys() {
    let payload = b"edge list 0-1 1-2 2-3";
    let key = SealKey(0x1234_5678_9ABC_DEF0);
    let sealed = Sealed::seal(key, payload);

    assert_eq!(&sealed.unseal(key).expect("unseal")[..], payload);
    assert_eq!(sealed.unseal(SealKey(1)), Err(TeeError::SealTampered));

    // Purpose-derived keys do not unseal each other's artifacts.
    let a = Sealed::seal(key.derive("weights"), payload);
    assert!(a.unseal(key.derive("graph")).is_err());
    assert!(a.unseal(key.derive("weights")).is_ok());
}

#[test]
fn deployment_records_sealed_private_artifacts() {
    let (trained, data) = trained_pair();
    let vault = pipeline::deploy(trained, &data).expect("deployment");
    let labels = vault.sealed_artifact_labels();
    assert!(
        labels.contains(&"real-graph-coo"),
        "graph must be sealed at rest"
    );
    assert!(labels.contains(&"rectifier-shape"));
}

#[test]
fn logits_contain_more_link_signal_than_labels() {
    // §IV-E's rationale for label-only output: posteriors (logits) of a
    // real-adjacency model leak links; hard labels leak far less. We
    // quantify by attacking the original model's logits vs a one-hot
    // encoding of its labels.
    let (trained, data) = trained_pair();
    let original = trained.original.as_ref().expect("reference");
    let embs = original.embeddings(&data.features).expect("embeddings");
    let logits = embs.last().expect("logits").clone();
    let preds = original.predict(&data.features).expect("predict");
    let onehot = linalg::DenseMatrix::from_fn(preds.len(), data.num_classes, |r, c| {
        if preds[r] == c {
            1.0
        } else {
            0.0
        }
    });
    let attack = LinkStealingAttack::new(SimilarityMetric::Cosine).with_seed(4);
    let auc_logits = attack.run(&data.graph, &[logits]).expect("attack");
    let auc_labels = attack.run(&data.graph, &[onehot]).expect("attack");
    assert!(
        auc_logits > auc_labels,
        "logits ({auc_logits:.3}) should leak more than hard labels ({auc_labels:.3})"
    );
}
