//! Enclave-memory integration tests: the §III-C / Fig. 6 resource
//! claims — rectifiers fit the EPC with strict (no-paging) policy, the
//! paging policy degrades gracefully, and the accounting is exact.

use datasets::{DatasetSpec, SyntheticPlanetoid};
use gnnvault::{pipeline, ModelConfig, RectifierKind, SubstituteKind, Vault};
use tee::{CostModel, EnclaveSim, OverBudgetPolicy, SealKey, MB};

#[test]
fn every_model_config_fits_strict_epc() {
    for (spec, model_fn) in [
        (
            DatasetSpec::CORA,
            ModelConfig::m1 as fn(usize) -> ModelConfig,
        ),
        (DatasetSpec::CORAFULL, ModelConfig::m2),
        (DatasetSpec::COMPUTER, ModelConfig::m3),
    ] {
        let data = SyntheticPlanetoid::new(spec)
            .scale(0.03)
            .seed(1)
            .generate()
            .expect("generation");
        for kind in RectifierKind::ALL {
            let trained = pipeline::train(
                &data,
                &pipeline::PipelineConfig {
                    model: model_fn(data.num_classes),
                    substitute: SubstituteKind::Knn { k: 2 },
                    rectifier: kind,
                    epochs: 10,
                    train_original: false,
                    ..Default::default()
                },
            )
            .expect("training");
            // Strict policy: any EPC overflow fails the deployment/inference.
            let mut vault = Vault::deploy(
                trained.backbone,
                trained.rectifier,
                &data.graph,
                tee::SGX_EPC_BYTES,
                CostModel::default(),
                OverBudgetPolicy::Fail,
                SealKey(1),
            )
            .expect("deployment within EPC");
            let (_, report) = vault.infer(&data.features).expect("inference within EPC");
            assert!(
                report.peak_enclave_bytes < 48 * MB,
                "{} {kind:?}: peak {} MB leaves < 2x headroom",
                spec.name,
                report.peak_enclave_bytes / MB
            );
        }
    }
}

#[test]
fn paging_policy_charges_swap_costs_where_strict_fails() {
    let budget = 64 * 1024; // 64 KiB toy EPC
    let mut strict = EnclaveSim::new(budget, CostModel::default(), OverBudgetPolicy::Fail);
    assert!(strict.alloc("too big", budget + 1).is_err());

    let mut paging = EnclaveSim::new(budget, CostModel::default(), OverBudgetPolicy::Swap);
    paging
        .alloc("too big", budget + 8192)
        .expect("paging accepts");
    assert_eq!(paging.swapped_pages(), 2);
    assert!(paging.meter().total().simulated_ns > 0);
}

#[test]
fn enclave_accounting_matches_component_sizes() {
    let data = SyntheticPlanetoid::new(DatasetSpec::CORA)
        .scale(0.03)
        .seed(2)
        .generate()
        .expect("generation");
    let trained = pipeline::train(
        &data,
        &pipeline::PipelineConfig {
            model: ModelConfig::custom("acct", &[16, 8, 7], &[8, 4, 7]),
            substitute: SubstituteKind::Knn { k: 2 },
            rectifier: RectifierKind::Series,
            epochs: 5,
            train_original: false,
            ..Default::default()
        },
    )
    .expect("training");
    let rect_bytes = trained.rectifier.nbytes();
    let coo_bytes = data.graph.coo_nbytes();
    let vault = Vault::deploy(
        trained.backbone,
        trained.rectifier,
        &data.graph,
        tee::SGX_EPC_BYTES,
        CostModel::free(),
        OverBudgetPolicy::Fail,
        SealKey(3),
    )
    .expect("deployment");
    // Resident set: params + COO + degrees + CSR adjacency. Peak at
    // deploy time must cover at least params + COO.
    assert!(vault.peak_enclave_bytes() >= rect_bytes + coo_bytes);
}

#[test]
fn transfer_bytes_scale_with_rectifier_kind() {
    let data = SyntheticPlanetoid::new(DatasetSpec::CORA)
        .scale(0.04)
        .seed(4)
        .generate()
        .expect("generation");
    let mut totals = std::collections::HashMap::new();
    for kind in RectifierKind::ALL {
        let trained = pipeline::train(
            &data,
            &pipeline::PipelineConfig {
                model: ModelConfig::custom("xfer", &[32, 16, 7], &[16, 8, 7]),
                substitute: SubstituteKind::Knn { k: 2 },
                rectifier: kind,
                epochs: 5,
                train_original: false,
                ..Default::default()
            },
        )
        .expect("training");
        let mut vault = pipeline::deploy(trained, &data).expect("deployment");
        let (_, report) = vault.infer(&data.features).expect("inference");
        totals.insert(kind, report.transferred_bytes);
    }
    // Cascaded ships every embedding; parallel ships the first L_rect;
    // series ships one. With equal layer counts cascaded >= parallel > series.
    assert!(totals[&RectifierKind::Cascaded] >= totals[&RectifierKind::Parallel]);
    assert!(totals[&RectifierKind::Parallel] > totals[&RectifierKind::Series]);
}
