//! Cross-crate integration tests: the full GNNVault lifecycle from
//! synthetic data generation through deployment and inference.

use datasets::{DatasetSpec, SyntheticPlanetoid};
use gnnvault::{pipeline, ModelConfig, RectifierKind, SubstituteKind};

fn quick_config(rectifier: RectifierKind, substitute: SubstituteKind) -> pipeline::PipelineConfig {
    pipeline::PipelineConfig {
        model: ModelConfig::custom("it", &[32, 16, 0], &[16, 8, 0]),
        substitute,
        rectifier,
        epochs: 100,
        lr: 0.02,
        weight_decay: 5e-4,
        dropout: 0.2,
        seed: 1,
        train_original: true,
    }
}

fn config_for(
    data: &datasets::CitationDataset,
    rectifier: RectifierKind,
) -> pipeline::PipelineConfig {
    let mut cfg = quick_config(rectifier, SubstituteKind::Knn { k: 2 });
    *cfg.model.backbone_channels.last_mut().unwrap() = data.num_classes;
    *cfg.model.rectifier_channels.last_mut().unwrap() = data.num_classes;
    cfg
}

#[test]
fn citeseer_like_pipeline_recovers_accuracy() {
    let data = SyntheticPlanetoid::new(DatasetSpec::CITESEER)
        .scale(0.05)
        .seed(2)
        .generate()
        .expect("generation");
    let cfg = config_for(&data, RectifierKind::Parallel);
    let trained = pipeline::train(&data, &cfg).expect("training");
    let eval = pipeline::evaluate(&trained, &data).expect("evaluation");
    assert!(eval.original_accuracy > eval.backbone_accuracy);
    assert!(eval.protection_margin() > 0.0);
    assert!(eval.accuracy_degradation() < 0.15);
}

#[test]
fn every_rectifier_kind_deploys_and_infers_consistently() {
    let data = SyntheticPlanetoid::new(DatasetSpec::CORA)
        .scale(0.05)
        .seed(3)
        .generate()
        .expect("generation");
    for kind in RectifierKind::ALL {
        let cfg = config_for(&data, kind);
        let trained = pipeline::train(&data, &cfg).expect("training");
        let real_adj = graph::normalization::gcn_normalize(&data.graph);
        let embs = trained
            .backbone
            .embeddings(&data.features)
            .expect("embeddings");
        let direct = trained
            .rectifier
            .predict(&real_adj, &embs)
            .expect("direct prediction");

        let mut vault = pipeline::deploy(trained, &data).expect("deployment");
        let (labels, report) = vault.infer(&data.features).expect("inference");
        let via_vault: Vec<usize> = labels.iter().map(|l| l.0).collect();
        assert_eq!(
            direct, via_vault,
            "{kind:?}: enclave path must match direct"
        );
        assert!(report.peak_enclave_bytes < tee::SGX_EPC_BYTES, "{kind:?}");
        assert!(report.transferred_bytes > 0, "{kind:?}");
    }
}

#[test]
fn all_six_dataset_specs_run_the_pipeline() {
    for (i, spec) in DatasetSpec::ALL.iter().enumerate() {
        let data = SyntheticPlanetoid::new(*spec)
            .scale(0.02)
            .seed(i as u64)
            .generate()
            .expect("generation");
        data.check_consistency().expect("consistency");
        let mut cfg = config_for(&data, RectifierKind::Series);
        cfg.epochs = 30; // keep the sweep fast; accuracy not asserted here
        cfg.train_original = false;
        let trained = pipeline::train(&data, &cfg).expect("training");
        let eval = pipeline::evaluate(&trained, &data).expect("evaluation");
        assert!(eval.rectifier_accuracy.is_finite(), "{}", spec.name);
    }
}

#[test]
fn pipeline_is_deterministic_under_seed() {
    let data = SyntheticPlanetoid::new(DatasetSpec::CORA)
        .scale(0.04)
        .seed(5)
        .generate()
        .expect("generation");
    let cfg = config_for(&data, RectifierKind::Series);
    let a = pipeline::train(&data, &cfg).expect("training a");
    let b = pipeline::train(&data, &cfg).expect("training b");
    let eval_a = pipeline::evaluate(&a, &data).expect("eval a");
    let eval_b = pipeline::evaluate(&b, &data).expect("eval b");
    assert_eq!(eval_a, eval_b);
}

#[test]
fn substitute_quality_orders_rectified_accuracy() {
    // Random substitute should rectify worse than KNN (Table III shape).
    let data = SyntheticPlanetoid::new(DatasetSpec::CORA)
        .scale(0.06)
        .seed(9)
        .generate()
        .expect("generation");
    let knn = {
        let cfg = config_for(&data, RectifierKind::Parallel);
        let trained = pipeline::train(&data, &cfg).expect("training");
        pipeline::evaluate(&trained, &data).expect("eval")
    };
    let random = {
        let mut cfg = config_for(&data, RectifierKind::Parallel);
        cfg.substitute = SubstituteKind::Random { ratio: 1.0 };
        let trained = pipeline::train(&data, &cfg).expect("training");
        pipeline::evaluate(&trained, &data).expect("eval")
    };
    assert!(
        knn.rectifier_accuracy >= random.rectifier_accuracy,
        "knn prec {} < random prec {}",
        knn.rectifier_accuracy,
        random.rectifier_accuracy
    );
    assert!(knn.backbone_accuracy > random.backbone_accuracy + 0.1);
}
