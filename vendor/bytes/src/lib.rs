//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] here is a plain `Vec<u8>` wrapper (cloning copies, unlike
//! upstream's refcounted slices) and [`BytesMut`] a growable buffer.
//! The [`Buf`]/[`BufMut`] traits cover the little-endian accessors the
//! TEE codec uses. Semantics relied on by the workspace — `freeze`,
//! `Deref<Target = [u8]>`, cursor-style reads on `&[u8]` — match
//! upstream.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// An immutable byte payload (Vec-backed; clones copy).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new payload.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The payload as a vector (copies).
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable payload without copying.
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Cursor-style reads from a byte source, advancing past consumed data.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Consumes and returns one byte.
    ///
    /// # Panics
    ///
    /// Panics if no bytes remain.
    fn get_u8(&mut self) -> u8;

    /// Consumes 8 bytes as a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64;

    /// Consumes 4 bytes as a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32;

    /// Consumes 4 bytes as a little-endian `f32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().expect("split_at(8) yields 8 bytes"))
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().expect("split_at(4) yields 4 bytes"))
    }
}

/// Appends to a byte sink.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u64` little-endian.
    fn put_u64_le(&mut self, v: u64);

    /// Appends a `u32` little-endian.
    fn put_u32_le(&mut self, v: u32);

    /// Appends an `f32` little-endian.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_f32_le(-1.5);
        buf.put_u8(0xAB);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 13);

        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(cursor.get_f32_le(), -1.5);
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_behaves_like_a_slice() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }
}
