//! Offline stand-in for the `rand` crate (0.8-compatible surface).
//!
//! Implements exactly the API this workspace uses — [`Rng::gen_range`],
//! [`Rng::gen`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] — over a deterministic
//! xoshiro256++ generator seeded through SplitMix64. Streams are stable
//! across platforms and releases, which the reproduction's seeded tests
//! rely on; they do NOT match upstream rand's ChaCha-based `StdRng`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`] (mirroring rand 0.8's `Rng: RngCore` relationship).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; only [`SeedableRng::seed_from_u64`] is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy; here, from the system clock
    /// (offline stand-in — do not use for anything security-sensitive).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(nanos)
    }
}

/// Types samplable from their standard distribution via [`Rng::gen`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform [0, 1) with full f32 mantissa coverage.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift maps 64 random bits onto the span with
                // negligible (< 2^-64) bias — no modulo, no rejection loop.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via SplitMix64. Fast, 256-bit state, passes BigCrush.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the seeding scheme xoshiro recommends.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace's `SmallRng` is the same generator.
    pub type SmallRng = StdRng;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and sampling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience free function mirroring `rand::random`, seeded from the
/// system clock (offline stand-in; not cryptographic).
pub fn random<T: Standard>() -> T {
    use rngs::StdRng;
    let mut rng = StdRng::from_entropy();
    T::sample_standard(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-2.5f32..=2.5);
            assert!((-2.5..=2.5).contains(&w));
            let x = rng.gen_range(0usize..=0);
            assert_eq!(x, 0);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut min = f32::MAX;
        let mut max = f32::MIN;
        for _ in 0..10_000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < 0.01 && max > 0.99);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying sorted is ~impossible");
    }

    #[test]
    fn choose_returns_members() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [10, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
