//! Offline stand-in for `serde`.
//!
//! Exposes the `Serialize` / `Deserialize` names (trait + derive macro)
//! so annotated types compile. No serialization machinery is provided —
//! the workspace marshals world-crossing payloads through the explicit
//! codec in `tee::codec` instead.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name.
pub trait Deserialize<'de> {}
