//! Offline stand-in for `serde_derive`.
//!
//! The workspace has no network access and no serde *format* crate, so
//! `#[derive(Serialize, Deserialize)]` only needs to parse — no impl is
//! generated. If a future PR vendors a real format crate, replace this
//! with the upstream derive.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
