//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with a `#![proptest_config(...)]` header, range
//! strategies (`0usize..12`, `-5.0f32..5.0`), [`any`], and
//! [`collection::vec`]. Cases are generated from a deterministic
//! per-test seed (derived from the test name, overridable via
//! `PROPTEST_SEED`), so failures reproduce exactly. Unlike upstream
//! there is no shrinking: a failing case panics with its inputs via the
//! standard assert message.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The generator handed to strategies; deterministic per test.
pub type TestRng = StdRng;

/// Builds the per-test RNG: `PROPTEST_SEED` if set, else an FNV-1a hash
/// of the test name, mixed with the case index.
pub fn test_rng(test_name: &str, case: u64) -> TestRng {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or_else(|| fnv1a(test_name.as_bytes()));
    TestRng::seed_from_u64(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f32, f64);

/// Strategy for a type's full value range, returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Mirrors `proptest::prelude::any::<T>()`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                // Assemble from 64-bit draws so every width is covered.
                let mut acc: u128 = 0;
                let mut bits = 0;
                while bits < <$t>::BITS {
                    acc = (acc << 64) | u128::from(rng.next_u64());
                    bits += 64;
                }
                acc as $t
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        // Finite floats across a wide dynamic range (no NaN/inf, which
        // upstream also excludes by default weighting).
        let mantissa: f32 = rng.gen_range(-1.0f32..1.0);
        let exp: i32 = rng.gen_range(-20i32..21);
        mantissa * (2.0f32).powi(exp)
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let mantissa: f64 = rng.gen_range(-1.0f64..1.0);
        let exp: i32 = rng.gen_range(-40i32..41);
        mantissa * (2.0f64).powi(exp)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Length specifications accepted by [`vec()`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Mirrors `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Property assertion; panics (no shrinking) with the standard message.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion; panics with the standard message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests. Each function runs `cases` times with
/// fresh strategy samples bound to its `name in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..u64::from(cfg.cases) {
                    let mut rng = $crate::test_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $( let $arg = $crate::Strategy::sample(&$strategy, &mut rng); )*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name ( $($arg in $strategy),* ) $body )*
        }
    };
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Any, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_test_name() {
        let a: Vec<u64> = (0..5)
            .map(|c| rand::RngCore::next_u64(&mut crate::test_rng("x", c)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| rand::RngCore::next_u64(&mut crate::test_rng("x", c)))
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..9, x in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_spec(
            v in collection::vec(any::<u8>(), 0..7),
            w in collection::vec(0i32..5, 4),
        ) {
            prop_assert!(v.len() < 7);
            prop_assert_eq!(w.len(), 4);
            prop_assert!(w.iter().all(|&x| (0..5).contains(&x)));
        }
    }
}
