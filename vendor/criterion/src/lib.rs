//! Offline stand-in for `criterion`.
//!
//! Implements the macro/API surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group`, `bench_with_input`, `Throughput`, `BenchmarkId`)
//! with a simple warmup + multi-sample wall-clock measurement. Every
//! bench binary writes `BENCH_<suite>.json` into the working directory
//! (the workspace root under `cargo bench`) so successive PRs have a
//! machine-readable perf trajectory to regress against.
//!
//! Two measurement modes: [`Bencher::iter`]/[`Bencher::iter_batched`]
//! average batches of calls (throughput mode — JSON percentile fields
//! stay `null`), while [`Bencher::iter_latency`] times every call
//! individually and emits the per-call p50/p99/p999 into the JSON row,
//! so tail latency is tracked with the same trajectory machinery.
//!
//! Knobs (environment):
//! - `BENCH_JSON`: override the output path.
//! - `BENCH_SAMPLE_MS` (default 5): target milliseconds per sample.
//! - `BENCH_BUDGET_MS` (default 1500): time budget per benchmark.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measured statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark id, `group/function` or bare function name.
    pub id: String,
    /// Mean time per iteration.
    pub mean_ns: f64,
    /// Median of per-sample means.
    pub median_ns: f64,
    /// Fastest per-sample mean.
    pub min_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Declared per-iteration payload, if any.
    pub throughput_bytes: Option<u64>,
    /// Median per-call latency — present only for benches measured in
    /// latency mode ([`Bencher::iter_latency`], which times every call
    /// individually instead of averaging batches).
    pub p50_ns: Option<f64>,
    /// 99th-percentile per-call latency (latency mode only).
    pub p99_ns: Option<f64>,
    /// 99.9th-percentile per-call latency (latency mode only).
    pub p999_ns: Option<f64>,
}

/// Everything one measurement loop produces; percentile fields stay
/// `None` for throughput-style loops that only observe batch means.
#[derive(Debug, Clone, Copy)]
struct RawStats {
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
    p50_ns: Option<f64>,
    p99_ns: Option<f64>,
    p999_ns: Option<f64>,
}

/// Per-iteration payload declaration, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

impl Throughput {
    fn bytes(self) -> Option<u64> {
        match self {
            Throughput::Bytes(b) => Some(b),
            Throughput::Elements(_) => None,
        }
    }
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Input-regeneration granularity for [`Bencher::iter_batched`],
/// mirroring `criterion::BatchSize`. Only a sizing hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold; batch freely.
    SmallInput,
    /// Inputs are large; keep batches short.
    LargeInput,
    /// Regenerate for every call.
    PerIteration,
}

/// Drives a single benchmark's measurement loop.
#[derive(Debug, Default)]
pub struct Bencher {
    stats: Option<RawStats>,
}

impl Bencher {
    /// Measures `routine`: short warmup, then fixed-size samples until
    /// the per-benchmark time budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let sample_target = Duration::from_millis(env_ms("BENCH_SAMPLE_MS", 5));
        let budget = Duration::from_millis(env_ms("BENCH_BUDGET_MS", 1500));

        // Warmup + calibration: estimate one iteration's cost.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        loop {
            black_box(routine());
            calib_iters += 1;
            if calib_start.elapsed() >= sample_target || calib_iters >= 1000 {
                break;
            }
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        let iters_per_sample =
            ((sample_target.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut sample_means: Vec<f64> = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < budget && sample_means.len() < 100 {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t.elapsed().as_secs_f64();
            sample_means.push(elapsed * 1e9 / iters_per_sample as f64);
            if sample_means.len() >= 10 && run_start.elapsed() >= budget / 2 {
                break;
            }
        }
        sample_means.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = sample_means.len();
        let mean = sample_means.iter().sum::<f64>() / n as f64;
        let median = sample_means[n / 2];
        let min = sample_means[0];
        self.stats = Some(RawStats {
            mean_ns: mean,
            median_ns: median,
            min_ns: min,
            samples: n,
            iters_per_sample,
            p50_ns: None,
            p99_ns: None,
            p999_ns: None,
        });
    }

    /// Latency-mode measurement: times *every call* of `routine`
    /// individually (no batch averaging) and reports p50/p99/p999 of
    /// the per-call distribution alongside the usual mean/median/min.
    /// Use for tail-latency benches where a batch mean would flatten
    /// exactly the outliers being measured; the per-call timer read
    /// bounds resolution, so routines under ~100 ns should stay on
    /// [`iter`](Self::iter).
    pub fn iter_latency<O>(&mut self, mut routine: impl FnMut() -> O) {
        let budget = Duration::from_millis(env_ms("BENCH_BUDGET_MS", 1500));
        // Short untimed warmup so cold caches don't own the tail.
        for _ in 0..5 {
            black_box(routine());
        }
        let mut samples_ns: Vec<f64> = Vec::new();
        let run_start = Instant::now();
        loop {
            let t = Instant::now();
            black_box(routine());
            samples_ns.push(t.elapsed().as_secs_f64() * 1e9);
            if run_start.elapsed() >= budget || samples_ns.len() >= 10_000 {
                break;
            }
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = samples_ns.len();
        let mean = samples_ns.iter().sum::<f64>() / n as f64;
        // Ceil-rank percentile on the sorted per-call samples (rank 1
        // is the minimum, rank n the maximum).
        let pct = |q: f64| samples_ns[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        self.stats = Some(RawStats {
            mean_ns: mean,
            median_ns: pct(0.50),
            min_ns: samples_ns[0],
            samples: n,
            iters_per_sample: 1,
            p50_ns: Some(pct(0.50)),
            p99_ns: Some(pct(0.99)),
            p999_ns: Some(pct(0.999)),
        });
    }

    /// Measures `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        size: BatchSize,
    ) {
        let sample_target = Duration::from_millis(env_ms("BENCH_SAMPLE_MS", 5));
        let budget = Duration::from_millis(env_ms("BENCH_BUDGET_MS", 1500));
        let max_batch = match size {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        };

        // Calibrate with one timed call.
        let input = setup();
        let t = Instant::now();
        black_box(routine(input));
        let per_iter = t.elapsed().as_secs_f64().max(1e-9);
        let iters_per_sample =
            ((sample_target.as_secs_f64() / per_iter) as u64).clamp(1, max_batch);

        let mut sample_means: Vec<f64> = Vec::new();
        let run_start = Instant::now();
        loop {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = t.elapsed().as_secs_f64();
            sample_means.push(elapsed * 1e9 / iters_per_sample as f64);
            if run_start.elapsed() >= budget || sample_means.len() >= 100 {
                break;
            }
        }
        sample_means.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = sample_means.len();
        let mean = sample_means.iter().sum::<f64>() / n as f64;
        self.stats = Some(RawStats {
            mean_ns: mean,
            median_ns: sample_means[n / 2],
            min_ns: sample_means[0],
            samples: n,
            iters_per_sample,
            p50_ns: None,
            p99_ns: None,
            p999_ns: None,
        });
    }
}

/// Collects benchmark results and writes the JSON trajectory.
#[derive(Debug)]
pub struct Criterion {
    suite: String,
    records: Vec<BenchRecord>,
    metadata: Vec<(String, String)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            suite: "bench".to_string(),
            records: Vec::new(),
            metadata: Vec::new(),
        }
    }
}

impl Criterion {
    /// Builds a runner whose suite name is derived from the bench
    /// binary's file stem (cargo's trailing `-<hash>` stripped).
    pub fn from_env() -> Self {
        let suite = std::env::args()
            .next()
            .and_then(|argv0| {
                std::path::Path::new(&argv0)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
            })
            .map(|stem| strip_cargo_hash(&stem))
            .unwrap_or_else(|| "bench".to_string());
        Self {
            suite,
            records: Vec::new(),
            metadata: Vec::new(),
        }
    }

    /// Records a metadata key/value pair for the JSON header (machine
    /// facts the numbers depend on: CPU features, dispatched kernel
    /// variant, …). Setting an existing key overwrites it. Extension
    /// over upstream criterion, which has no metadata channel.
    pub fn set_metadata(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let (key, value) = (key.into(), value.into());
        match self.metadata.iter_mut().find(|(k, _)| *k == key) {
            Some(entry) => entry.1 = value,
            None => self.metadata.push((key, value)),
        }
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into().id;
        self.run(None, id, None, f);
    }

    /// Runs one free-standing benchmark with a declared per-iteration
    /// payload, so its JSON row carries `throughput_bytes` without the
    /// group machinery (extension over upstream criterion, where only
    /// groups declare throughput).
    pub fn bench_function_with_throughput(
        &mut self,
        id: impl Into<BenchmarkId>,
        throughput: Throughput,
        f: impl FnMut(&mut Bencher),
    ) {
        let id = id.into().id;
        self.run(None, id, Some(throughput), f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn run(
        &mut self,
        group: Option<&str>,
        id: String,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let full_id = match group {
            Some(g) => format!("{g}/{id}"),
            None => id,
        };
        let mut bencher = Bencher::default();
        f(&mut bencher);
        let stats = bencher
            .stats
            .expect("benchmark closure must call Bencher::iter");
        let record = BenchRecord {
            id: full_id,
            mean_ns: stats.mean_ns,
            median_ns: stats.median_ns,
            min_ns: stats.min_ns,
            samples: stats.samples,
            iters_per_sample: stats.iters_per_sample,
            throughput_bytes: throughput.and_then(Throughput::bytes),
            p50_ns: stats.p50_ns,
            p99_ns: stats.p99_ns,
            p999_ns: stats.p999_ns,
        };
        let rate = record
            .throughput_bytes
            .map(|b| {
                format!(
                    "  ({:.1} MiB/s)",
                    b as f64 / (record.mean_ns / 1e9) / (1 << 20) as f64
                )
            })
            .unwrap_or_default();
        let tail = record
            .p99_ns
            .map(|p99| format!("  p99 {:>12}", fmt_ns(p99)))
            .unwrap_or_default();
        println!(
            "{:<48} mean {:>12}  median {:>12}{tail}{rate}",
            record.id,
            fmt_ns(record.mean_ns),
            fmt_ns(record.median_ns),
        );
        self.records.push(record);
    }

    /// All records measured so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Writes `BENCH_<suite>.json` (or `$BENCH_JSON`) with every record.
    ///
    /// The default path is anchored at the workspace root (the nearest
    /// ancestor directory holding a `Cargo.lock`) — `cargo bench` runs
    /// bench binaries from the package directory, but the perf
    /// trajectory belongs beside the repository's other top-level
    /// reports.
    pub fn finalize(&self) {
        let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| {
            let name = format!("BENCH_{}.json", self.suite);
            workspace_root()
                .map(|root| root.join(&name).to_string_lossy().into_owned())
                .unwrap_or(name)
        });
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"suite\": {},\n", json_string(&self.suite)));
        out.push_str(&format!(
            "  \"generated_unix_ms\": {},\n",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis())
                .unwrap_or(0)
        ));
        out.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            std::thread::available_parallelism().map_or(1, |p| p.get())
        ));
        out.push_str("  \"metadata\": {");
        for (i, (key, value)) in self.metadata.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            out.push_str(&format!(
                "{sep}{}: {}",
                json_string(key),
                json_string(value)
            ));
        }
        out.push_str("},\n");
        out.push_str("  \"benches\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let tp = r
                .throughput_bytes
                .map_or("null".to_string(), |b| b.to_string());
            out.push_str(&format!(
                "    {{\"id\": {}, \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}, \"throughput_bytes\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}{}\n",
                json_string(&r.id),
                r.mean_ns,
                r.median_ns,
                r.min_ns,
                r.samples,
                r.iters_per_sample,
                tp,
                opt_ns(r.p50_ns),
                opt_ns(r.p99_ns),
                opt_ns(r.p999_ns),
                if i + 1 == self.records.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote {path} ({} benches)", self.records.len());
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration payload for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into().id;
        self.parent.run(Some(&self.name), id, self.throughput, f);
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let id = id.into().id;
        self.parent
            .run(Some(&self.name), id, self.throughput, |b| f(b, input));
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Re-export so `criterion::black_box` works as upstream.
pub use std::hint::black_box as criterion_black_box;

/// Nullable-nanosecond JSON field: `null` for throughput-mode benches,
/// one-decimal nanoseconds for latency-mode ones.
fn opt_ns(value: Option<f64>) -> String {
    value.map_or("null".to_string(), |ns| format!("{ns:.1}"))
}

fn env_ms(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn workspace_root() -> Option<std::path::PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.lock").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn strip_cargo_hash(stem: &str) -> String {
    match stem.rsplit_once('-') {
        Some((head, tail)) if tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit()) => {
            head.to_string()
        }
        _ => stem.to_string(),
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Declares a group function running each target, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench binary's `main`, running every group then writing
/// the JSON trajectory.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_env();
            $( $group(&mut c); )+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        std::env::set_var("BENCH_SAMPLE_MS", "1");
        std::env::set_var("BENCH_BUDGET_MS", "20");
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.throughput(Throughput::Bytes(4096));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| vec![0u8; n * 10])
        });
        group.finish();
        assert_eq!(c.records().len(), 2);
        assert_eq!(c.records()[0].id, "noop_sum");
        assert_eq!(c.records()[1].id, "grouped/7");
        assert_eq!(c.records()[1].throughput_bytes, Some(4096));
        assert!(c.records().iter().all(|r| r.mean_ns > 0.0));
    }

    #[test]
    fn metadata_and_standalone_throughput() {
        std::env::set_var("BENCH_SAMPLE_MS", "1");
        std::env::set_var("BENCH_BUDGET_MS", "20");
        let mut c = Criterion::default();
        c.set_metadata("kernel_variant", "scalar");
        c.set_metadata("kernel_variant", "avx2");
        c.set_metadata("cpu_features", "avx2,fma");
        assert_eq!(
            c.metadata,
            vec![
                ("kernel_variant".to_string(), "avx2".to_string()),
                ("cpu_features".to_string(), "avx2,fma".to_string()),
            ],
        );
        c.bench_function_with_throughput("payload", Throughput::Bytes(512), |b| {
            b.iter(|| (0..64u64).sum::<u64>())
        });
        assert_eq!(c.records()[0].throughput_bytes, Some(512));
    }

    #[test]
    fn latency_mode_records_percentiles() {
        std::env::set_var("BENCH_SAMPLE_MS", "1");
        std::env::set_var("BENCH_BUDGET_MS", "20");
        let mut c = Criterion::default();
        c.bench_function("throughput_mode", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("latency_mode", |b| {
            b.iter_latency(|| (0..100u64).sum::<u64>())
        });
        let throughput = &c.records()[0];
        assert_eq!(throughput.p50_ns, None, "batch mode has no percentiles");
        let latency = &c.records()[1];
        assert_eq!(latency.iters_per_sample, 1, "every call timed alone");
        let (p50, p99, p999) = (
            latency.p50_ns.expect("latency mode fills p50"),
            latency.p99_ns.expect("latency mode fills p99"),
            latency.p999_ns.expect("latency mode fills p999"),
        );
        assert!(p50 > 0.0);
        assert!(p50 <= p99 && p99 <= p999, "percentiles are ordered");
        assert_eq!(latency.p50_ns, Some(latency.median_ns));
        assert!(opt_ns(latency.p99_ns).parse::<f64>().is_ok());
        assert_eq!(opt_ns(None), "null");
    }

    #[test]
    fn cargo_hash_stripping() {
        assert_eq!(strip_cargo_hash("kernels-0123456789abcdef"), "kernels");
        assert_eq!(strip_cargo_hash("kernels-xyz"), "kernels-xyz");
        assert_eq!(strip_cargo_hash("kernels"), "kernels");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
