//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly, recovering the inner data if a
//! previous holder panicked (parking_lot has no poisoning at all).

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, ignoring poison from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
