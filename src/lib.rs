//! Umbrella crate for the GNNVault reproduction.
//!
//! Re-exports every workspace crate so examples and integration tests can
//! `use gnnvault_suite::...` a single dependency. See the repository
//! README for the architecture overview and DESIGN.md for the
//! paper-to-module mapping.

pub use attacks;
pub use datasets;
pub use gnnvault;
pub use graph;
pub use linalg;
pub use metrics;
pub use nn;
pub use serve;
pub use tee;
